// Thread-scaling curve of the parallel execution runtime: Q1–Q3 of the
// Table II suite at 1/2/4/8 threads, uncached (raw parsing is the work
// being parallelized), verifying byte-identical results at every degree.
//
// A second section measures the shared-scan mode: K ∈ {1,2,4,8} clients
// fire the same query concurrently at one session, with scan sharing off
// (every client parses every split) and on (concurrent subscriptions
// coalesce into one parse pass per morsel — exec/shared_scan.h), again
// verifying byte-identical results and reporting the pass/coalesce
// counters that prove the sharing happened.
//
// Writes BENCH_scaling.json with both curves. Speedups are only meaningful
// up to the machine's core count (reported in the JSON); on a single-core
// container every degree measures ~1x by construction.

#include <atomic>
#include <cstdio>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "catalog/catalog.h"
#include "common/time_util.h"
#include "core/maxson.h"
#include "engine/fingerprint.h"
#include "workload/query_templates.h"

using maxson::core::MaxsonConfig;
using maxson::core::MaxsonSession;
using maxson::workload::BenchmarkQuery;

int main() {
  maxson::bench::PrintHeader(
      "Thread scaling — Q1-Q3 wall time at 1/2/4/8 execution threads",
      "split- and chunk-parallel execution shortens the read+parse critical "
      "path while keeping results byte-identical");

  maxson::bench::BenchWorkspace workspace("scaling");
  maxson::catalog::Catalog catalog;
  maxson::workload::BenchmarkSuiteOptions suite;
  suite.bytes_per_table = 6ull << 20;
  suite.max_rows = 30000;
  // Several files per table so split parallelism has units to fan out.
  suite.rows_per_file = 5000;
  auto all_queries = maxson::workload::MakeTableIIQueries(suite);
  std::vector<BenchmarkQuery> queries;
  for (auto& q : all_queries) {
    if (q.name == "Q1" || q.name == "Q2" || q.name == "Q3") {
      queries.push_back(std::move(q));
    }
  }
  if (auto st = maxson::workload::GenerateBenchmarkTables(
          queries, workspace.dir() + "/warehouse", suite, &catalog);
      !st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }

  MaxsonConfig config;
  config.cache_root = workspace.dir() + "/cache";
  config.engine.default_database = "bench";
  config.engine.num_threads = 1;
  MaxsonSession session(&catalog, config);

  const unsigned cores = std::thread::hardware_concurrency();
  const std::vector<size_t> degrees = {1, 2, 4, 8};
  constexpr int kReps = 3;

  struct Point {
    size_t threads;
    double seconds;
  };
  struct Curve {
    std::string name;
    std::vector<Point> points;
  };
  std::vector<Curve> curves;

  std::printf("machine: %u hardware thread(s)\n\n", cores);
  std::printf("%-6s %8s %12s %9s\n", "query", "threads", "wall(ms)",
              "speedup");
  bool identical = true;
  for (const BenchmarkQuery& q : queries) {
    Curve curve;
    curve.name = q.name;
    std::string baseline_fp;
    double baseline_seconds = 0;
    for (const size_t threads : degrees) {
      maxson::core::SessionUpdate update;
      update.num_threads = threads;
      if (auto st = session.UpdateConfig(update); !st.ok()) {
        std::fprintf(stderr, "%s\n", st.ToString().c_str());
        return 1;
      }
      // Warmup (first run pays page-cache and speculation-training costs),
      // then best-of-kReps.
      auto warm = session.Execute(q.sql);
      if (!warm.ok()) {
        std::fprintf(stderr, "%s: %s\n", q.name.c_str(),
                     warm.status().ToString().c_str());
        return 1;
      }
      // Cell-exact rendering (engine/fingerprint.h), so equal fingerprints
      // mean byte-identical results.
      const std::string fp = maxson::engine::FingerprintBatch(warm->batch);
      if (threads == 1) {
        baseline_fp = fp;
      } else if (fp != baseline_fp) {
        identical = false;
        std::fprintf(stderr, "%s: result diverged at %zu threads!\n",
                     q.name.c_str(), threads);
      }
      double best = 1e30;
      for (int rep = 0; rep < kReps; ++rep) {
        maxson::Stopwatch timer;
        auto result = session.Execute(q.sql);
        const double elapsed = timer.ElapsedSeconds();
        if (!result.ok()) {
          std::fprintf(stderr, "%s: %s\n", q.name.c_str(),
                       result.status().ToString().c_str());
          return 1;
        }
        if (elapsed < best) best = elapsed;
      }
      if (threads == 1) baseline_seconds = best;
      curve.points.push_back(Point{threads, best});
      std::printf("%-6s %8zu %12.2f %8.2fx\n", q.name.c_str(), threads,
                  best * 1e3, baseline_seconds / best);
    }
    curves.push_back(std::move(curve));
  }
  std::printf("\nresults byte-identical across degrees: %s\n",
              identical ? "yes" : "NO");

  // ---- Shared-scan mode: K concurrent clients, same query ----
  // K threads fire Q1 at the session simultaneously (spin barrier so they
  // really overlap); with sharing off every client decodes every split,
  // with sharing on concurrent subscriptions coalesce into one parse pass
  // per morsel. Engine Execute is concurrency-safe (the serving layer runs
  // many tenants on one engine), so the bench drives the session directly.
  const BenchmarkQuery& shared_query = queries.front();
  {
    maxson::core::SessionUpdate update;
    update.num_threads = 4;  // fixed pool degree; K is the swept variable
    if (auto st = session.UpdateConfig(update); !st.ok()) {
      std::fprintf(stderr, "%s\n", st.ToString().c_str());
      return 1;
    }
  }
  const std::string shared_fp_baseline = [&] {
    auto warm = session.Execute(shared_query.sql);
    return warm.ok() ? maxson::engine::FingerprintBatch(warm->batch)
                     : std::string();
  }();

  struct SharedPoint {
    size_t clients = 0;
    double off_seconds = 0;
    double on_seconds = 0;
    uint64_t parse_passes = 0;      // passes executed with sharing on
    uint64_t coalesced_parses = 0;  // registrations that joined a pass
  };
  std::vector<SharedPoint> shared_points;

  // Runs one K-client batch; returns the batch wall time.
  const auto run_batch = [&](size_t clients, bool sharing,
                             bool* all_ok) -> double {
    maxson::core::SessionUpdate update;
    update.shared_scan = sharing;
    if (auto st = session.UpdateConfig(update); !st.ok()) {
      std::fprintf(stderr, "%s\n", st.ToString().c_str());
      *all_ok = false;
      return 0;
    }
    std::atomic<size_t> ready{0};
    std::atomic<bool> go{false};
    std::atomic<bool> ok{true};
    std::vector<std::thread> workers;
    workers.reserve(clients);
    for (size_t i = 0; i < clients; ++i) {
      workers.emplace_back([&] {
        ready.fetch_add(1);
        while (!go.load(std::memory_order_acquire)) {
        }
        auto result = session.Execute(shared_query.sql);
        if (!result.ok() ||
            maxson::engine::FingerprintBatch(result->batch) !=
                shared_fp_baseline) {
          ok.store(false);
        }
      });
    }
    while (ready.load() < clients) {
    }
    maxson::Stopwatch timer;
    go.store(true, std::memory_order_release);
    for (std::thread& w : workers) w.join();
    const double elapsed = timer.ElapsedSeconds();
    if (!ok.load()) {
      std::fprintf(stderr,
                   "shared-scan batch (%zu clients, sharing %s) failed or "
                   "diverged from the baseline result!\n",
                   clients, sharing ? "on" : "off");
      *all_ok = false;
    }
    return elapsed;
  };

  std::printf("\nshared-scan mode — %s, %zu concurrent clients "
              "(pool degree 4)\n",
              shared_query.name.c_str(), size_t{8});
  std::printf("%-8s %12s %12s %9s %8s %10s\n", "clients", "off(ms)", "on(ms)",
              "speedup", "passes", "coalesced");
  bool shared_ok = !shared_fp_baseline.empty();
  for (const size_t clients : {size_t{1}, size_t{2}, size_t{4}, size_t{8}}) {
    SharedPoint point;
    point.clients = clients;
    point.off_seconds = run_batch(clients, false, &shared_ok);
    const maxson::core::SessionStats before = session.stats();
    point.on_seconds = run_batch(clients, true, &shared_ok);
    const maxson::core::SessionStats after = session.stats();
    point.parse_passes =
        after.sharedscan_parse_passes - before.sharedscan_parse_passes;
    point.coalesced_parses =
        after.sharedscan_coalesced_parses - before.sharedscan_coalesced_parses;
    std::printf("%-8zu %12.2f %12.2f %8.2fx %8llu %10llu\n", clients,
                point.off_seconds * 1e3, point.on_seconds * 1e3,
                point.off_seconds / point.on_seconds,
                static_cast<unsigned long long>(point.parse_passes),
                static_cast<unsigned long long>(point.coalesced_parses));
    shared_points.push_back(point);
  }
  {
    // Leave the session as the first section configured it.
    maxson::core::SessionUpdate update;
    update.shared_scan = false;
    (void)session.UpdateConfig(update);
  }
  identical = identical && shared_ok;

  // Machine-readable curve for CI trend tracking.
  std::ofstream json("BENCH_scaling.json", std::ios::trunc);
  json << "{\n  \"bench\": \"scaling_threads\",\n";
  json << "  \"hardware_concurrency\": " << cores << ",\n";
  json << "  \"results_identical\": " << (identical ? "true" : "false")
       << ",\n  \"queries\": [\n";
  for (size_t i = 0; i < curves.size(); ++i) {
    json << "    {\"name\": \"" << curves[i].name << "\", \"curve\": [";
    for (size_t p = 0; p < curves[i].points.size(); ++p) {
      const Point& point = curves[i].points[p];
      json << (p ? ", " : "") << "{\"threads\": " << point.threads
           << ", \"seconds\": " << point.seconds << ", \"speedup\": "
           << curves[i].points[0].seconds / point.seconds << "}";
    }
    json << "]}" << (i + 1 < curves.size() ? "," : "") << "\n";
  }
  json << "  ],\n";
  json << "  \"shared_scan\": {\"query\": \"" << shared_query.name
       << "\", \"pool_threads\": 4, \"curve\": [\n";
  for (size_t p = 0; p < shared_points.size(); ++p) {
    const SharedPoint& point = shared_points[p];
    json << "    {\"clients\": " << point.clients
         << ", \"seconds_off\": " << point.off_seconds
         << ", \"seconds_on\": " << point.on_seconds
         << ", \"speedup\": " << point.off_seconds / point.on_seconds
         << ", \"parse_passes\": " << point.parse_passes
         << ", \"coalesced_parses\": " << point.coalesced_parses << "}"
         << (p + 1 < shared_points.size() ? "," : "") << "\n";
  }
  json << "  ]}\n}\n";
  json.close();
  std::printf("wrote BENCH_scaling.json\n");
  return identical ? 0 : 1;
}
