// Fig. 13: time to generate the physical plan for each of the ten queries,
// SparkSQL vs Maxson (cache limit at the "300GB"-equivalent: most MPJPs
// cached).
//
// Paper shape: Maxson's plan modification adds a small constant overhead
// (~0.4 s there, dominated by metastore round-trips) that grows with the
// number of JSONPaths in the query and is negligible next to execution.

#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "catalog/catalog.h"
#include "common/time_util.h"
#include "core/maxson.h"
#include "workload/query_templates.h"

using maxson::core::MaxsonConfig;
using maxson::core::MaxsonSession;
using maxson::workload::BenchmarkQuery;

int main() {
  maxson::bench::PrintHeader(
      "Fig. 13 — physical plan generation time, SparkSQL vs Maxson",
      "Maxson adds a small planning overhead that grows with the query's "
      "JSONPath count and is negligible vs execution time");

  maxson::bench::BenchWorkspace workspace("fig13");
  maxson::catalog::Catalog catalog;
  maxson::workload::BenchmarkSuiteOptions suite;
  suite.bytes_per_table = 1ull << 20;  // planning cost is data-independent
  suite.max_rows = 4000;
  auto queries = maxson::workload::MakeTableIIQueries(suite);
  if (auto st = maxson::workload::GenerateBenchmarkTables(
          queries, workspace.dir() + "/warehouse", suite, &catalog);
      !st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }

  MaxsonConfig config;
  config.cache_root = workspace.dir() + "/cache";
  config.engine.default_database = "bench";
  config.predictor.epochs = 4;
  MaxsonSession session(&catalog, config);
  for (int day = 0; day < 14; ++day) {
    for (const BenchmarkQuery& q : queries) {
      for (int rep = 0; rep < 2; ++rep) {
        maxson::workload::QueryRecord record;
        record.date = day;
        record.paths = q.paths;
        session.RecordQuery(record);
      }
    }
  }
  if (auto st = session.TrainPredictor(8, 13); !st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }
  if (auto report = session.RunMidnightCycle(14); !report.ok()) {
    std::fprintf(stderr, "%s\n", report.status().ToString().c_str());
    return 1;
  }

  const int kRepeats = 200;
  std::printf("%-6s %10s %15s %15s %12s\n", "query", "paths",
              "Spark plan (us)", "Maxson plan (us)", "overhead");
  double total_overhead_us = 0;
  for (const BenchmarkQuery& q : queries) {
    // Spark-style planning: rewriter disabled.
    maxson::Stopwatch spark_timer;
    for (int i = 0; i < kRepeats; ++i) {
      auto plan = session.PlanWithoutCache(q.sql);
      if (!plan.ok()) {
        std::fprintf(stderr, "%s plan failed: %s\n", q.name.c_str(),
                     plan.status().ToString().c_str());
        return 1;
      }
    }
    const double spark_us = spark_timer.ElapsedSeconds() * 1e6 / kRepeats;

    maxson::Stopwatch maxson_timer;
    for (int i = 0; i < kRepeats; ++i) {
      auto plan = session.Plan(q.sql);
      if (!plan.ok()) {
        std::fprintf(stderr, "%s maxson plan failed: %s\n", q.name.c_str(),
                     plan.status().ToString().c_str());
        return 1;
      }
    }
    const double maxson_us = maxson_timer.ElapsedSeconds() * 1e6 / kRepeats;
    total_overhead_us += maxson_us - spark_us;
    std::printf("%-6s %10zu %15.1f %15.1f %10.1fus\n", q.name.c_str(),
                q.paths.size(), spark_us, maxson_us, maxson_us - spark_us);
  }
  std::printf("\naverage Maxson planning overhead: %.1f us per query "
              "(paper: ~0.4 s incl. metastore RPCs — ours is in-process)\n",
              total_overhead_us / 10.0);
  return 0;
}
