// Ablation: Sparser-style raw-byte prefiltering on selective JSON
// predicates (related-work technique, implemented as an opt-in engine
// optimization orthogonal to Maxson's caching).
//
// Expected shape (after Sparser, VLDB 2018): on selective predicates over
// raw JSON, rejecting records by substring search before parsing removes
// most of the parse cost; with Maxson's cache active the prefilter becomes
// irrelevant because nothing is parsed at all.

#include <cstdio>
#include <string>

#include "bench/bench_util.h"
#include "catalog/catalog.h"
#include "core/maxson.h"
#include "engine/engine.h"
#include "workload/data_generator.h"

using maxson::engine::EngineConfig;
using maxson::engine::QueryEngine;

int main() {
  maxson::bench::PrintHeader(
      "Ablation — Sparser-style raw prefiltering vs DOM parse vs Maxson",
      "filter-before-parse removes most parse cost on selective "
      "predicates; caching removes all of it");

  maxson::bench::BenchWorkspace workspace("rawfilter");
  maxson::catalog::Catalog catalog;
  maxson::workload::JsonTableSpec spec;
  spec.database = "db";
  spec.table = "logs";
  spec.num_properties = 20;
  spec.avg_json_bytes = 900;
  spec.rows = 30000;
  spec.rows_per_file = 10000;
  auto table =
      maxson::workload::GenerateJsonTable(spec, workspace.dir(), 3, &catalog);
  if (!table.ok()) {
    std::fprintf(stderr, "%s\n", table.status().ToString().c_str());
    return 1;
  }

  // 10%-selective predicate on a string category.
  const std::string sql =
      "SELECT id, get_json_object(payload, '$.f2') AS metric FROM db.logs "
      "WHERE get_json_object(payload, '$.f1') = 'cat7'";

  EngineConfig plain;
  plain.default_database = "db";
  EngineConfig sparser = plain;
  sparser.enable_raw_filter = true;

  QueryEngine baseline(&catalog, plain);
  QueryEngine prefiltered(&catalog, sparser);

  auto run = [&](QueryEngine* engine, const char* label) {
    auto result = engine->Execute(sql);
    if (!result.ok()) {
      std::fprintf(stderr, "%s failed: %s\n", label,
                   result.status().ToString().c_str());
      std::exit(1);
    }
    std::printf("%-28s %10.1fms  parse %8.1fms  parsed %6llu records  "
                "prefiltered %6llu rows  (%zu result rows)\n",
                label, result->metrics.TotalSeconds() * 1e3,
                result->metrics.parse_seconds * 1e3,
                static_cast<unsigned long long>(
                    result->metrics.parse.records_parsed),
                static_cast<unsigned long long>(
                    result->metrics.raw_filtered_rows),
                result->batch.num_rows());
    return result->metrics.TotalSeconds();
  };

  const double t_plain = run(&baseline, "DOM parse (baseline)");
  const double t_sparser = run(&prefiltered, "DOM + raw prefilter");

  // Maxson on top: cache $.f1/$.f2 and run with the prefilter moot.
  maxson::core::MaxsonConfig maxson_config;
  maxson_config.cache_root = workspace.dir() + "/cache";
  maxson_config.engine.default_database = "db";
  maxson_config.predictor.epochs = 5;
  maxson::core::MaxsonSession session(&catalog, maxson_config);
  maxson::workload::JsonPathLocation f1;
  f1.database = "db";
  f1.table = "logs";
  f1.column = "payload";
  f1.path = "$.f1";
  maxson::workload::JsonPathLocation f2 = f1;
  f2.path = "$.f2";
  for (int day = 0; day < 14; ++day) {
    for (int rep = 0; rep < 3; ++rep) {
      maxson::workload::QueryRecord q;
      q.date = day;
      q.paths = {f1, f2};
      session.RecordQuery(q);
    }
  }
  if (!session.TrainPredictor(8, 13).ok() ||
      !session.RunMidnightCycle(14).ok()) {
    std::fprintf(stderr, "maxson setup failed\n");
    return 1;
  }
  auto cached = session.Execute(sql);
  if (!cached.ok()) {
    std::fprintf(stderr, "%s\n", cached.status().ToString().c_str());
    return 1;
  }
  std::printf("%-28s %10.1fms  parse %8.1fms  parsed %6llu records  "
              "(cache hit)\n",
              "Maxson (cached)", cached->metrics.TotalSeconds() * 1e3,
              cached->metrics.parse_seconds * 1e3,
              static_cast<unsigned long long>(
                  cached->metrics.parse.records_parsed));

  std::printf("\nraw prefilter speedup over baseline: %.1fx; "
              "Maxson over baseline: %.1fx\n",
              t_plain / t_sparser,
              t_plain / std::max(1e-9, cached->metrics.TotalSeconds()));
  return 0;
}
