// Extended experiment: sustained daily operation on the real engine.
//
// The paper evaluates one snapshot of the nightly cycle; this bench runs
// several consecutive simulated days end-to-end: every day new data is
// appended (invalidating yesterday's cache), the day's queries execute
// (first against a stale cache, demonstrating the validity check of
// Algorithm 1), then the midnight cycle re-trains nothing but re-predicts,
// re-scores and re-populates the cache for the next day. Reported per day:
// query time with Maxson vs the no-cache baseline, cache overhead, and the
// share of queries that ran fully from cache.

#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "catalog/catalog.h"
#include "core/maxson.h"
#include "storage/corc_writer.h"
#include "storage/file_system.h"
#include "workload/data_generator.h"

using maxson::core::MaxsonConfig;
using maxson::core::MaxsonSession;
using maxson::storage::FileSystem;
using maxson::workload::JsonPathLocation;
using maxson::workload::JsonTableSpec;
using maxson::workload::QueryRecord;

namespace {

JsonPathLocation Loc(const char* path) {
  JsonPathLocation l;
  l.database = "db";
  l.table = "events";
  l.column = "payload";
  l.path = path;
  return l;
}

/// Appends one more part file of fresh data and bumps the table's
/// modification clock (the daily load).
maxson::Status AppendDailyData(maxson::catalog::Catalog* catalog,
                               const std::string& dir, size_t file_index,
                               uint64_t rows, int64_t timestamp) {
  JsonTableSpec spec;
  spec.table = "events";
  spec.num_properties = 14;
  spec.avg_json_bytes = 600;
  spec.seed = 7;
  maxson::storage::Schema schema;
  schema.AddField("id", maxson::storage::TypeKind::kInt64);
  schema.AddField("date", maxson::storage::TypeKind::kInt64);
  schema.AddField("payload", maxson::storage::TypeKind::kString);
  maxson::storage::CorcWriterOptions options;
  options.rows_per_group = 1000;
  maxson::storage::CorcWriter writer(
      dir + "/" + FileSystem::PartFileName(file_index), schema, options);
  MAXSON_RETURN_NOT_OK(writer.Open());
  for (uint64_t i = 0; i < rows; ++i) {
    const uint64_t row = file_index * rows + i;
    MAXSON_RETURN_NOT_OK(writer.AppendRow(
        {maxson::storage::Value::Int64(static_cast<int64_t>(row)),
         maxson::storage::Value::Int64(20190101 + static_cast<int64_t>(
                                                      file_index)),
         maxson::storage::Value::String(
             maxson::workload::GenerateJsonRecord(spec, row))}));
  }
  MAXSON_RETURN_NOT_OK(writer.Close());
  return catalog->TouchTable("db", "events", timestamp);
}

}  // namespace

int main() {
  maxson::bench::PrintHeader(
      "Extended — sustained daily operation (append, invalidate, re-cache)",
      "cache invalidates on daily loads, midnight cycle restores the "
      "speedup; overhead stays a small share of daily work");

  maxson::bench::BenchWorkspace workspace("daily");
  maxson::catalog::Catalog catalog;
  const std::string dir = workspace.dir() + "/warehouse/db/events";
  if (!FileSystem::MakeDirs(dir).ok()) return 1;
  if (!catalog.CreateDatabase("db").ok()) return 1;
  {
    maxson::catalog::TableInfo info;
    info.database = "db";
    info.name = "events";
    info.schema.AddField("id", maxson::storage::TypeKind::kInt64);
    info.schema.AddField("date", maxson::storage::TypeKind::kInt64);
    info.schema.AddField("payload", maxson::storage::TypeKind::kString);
    info.location = dir;
    if (!catalog.CreateTable(info).ok()) return 1;
  }
  const uint64_t kRowsPerDay = 8000;
  if (!AppendDailyData(&catalog, dir, 0, kRowsPerDay, 0).ok()) return 1;

  MaxsonConfig config;
  config.cache_root = workspace.dir() + "/cache";
  config.engine.default_database = "db";
  config.predictor.epochs = 6;
  MaxsonSession session(&catalog, config);

  const std::vector<std::string> daily_queries = {
      "SELECT get_json_object(payload, '$.f1') AS category, COUNT(*) AS n "
      "FROM db.events GROUP BY get_json_object(payload, '$.f1')",
      "SELECT id, get_json_object(payload, '$.f2') AS metric FROM db.events "
      "WHERE to_int(get_json_object(payload, '$.f2')) > 900",
      "SELECT get_json_object(payload, '$.f0') AS key0 FROM db.events "
      "ORDER BY to_int(get_json_object(payload, '$.f0')) DESC LIMIT 20",
  };
  const std::vector<JsonPathLocation> query_paths = {Loc("$.f0"), Loc("$.f1"),
                                                     Loc("$.f2")};

  // Two weeks of history to train on.
  for (int day = 0; day < 14; ++day) {
    for (int rep = 0; rep < 3; ++rep) {
      QueryRecord q;
      q.date = day;
      q.paths = query_paths;
      session.RecordQuery(q);
    }
  }
  if (!session.TrainPredictor(8, 13).ok()) {
    std::fprintf(stderr, "training failed\n");
    return 1;
  }
  // First midnight: populate the cache for day 14.
  if (!session.RunMidnightCycle(14).ok()) return 1;

  std::printf("%-5s %14s %14s %9s %12s %11s\n", "day", "no-cache (ms)",
              "maxson (ms)", "speedup", "cache (ms)", "stale runs");
  for (int day = 14; day < 19; ++day) {
    // Morning: the daily load arrives -> cache for this table goes stale.
    // The load happens after last midnight's cache population (cache_time
    // == day), so its modification stamp must exceed it.
    const size_t file_index = static_cast<size_t>(day - 13);
    if (!AppendDailyData(&catalog, dir, file_index, kRowsPerDay, day + 1)
             .ok()) {
      return 1;
    }
    // A query hitting the stale cache must fall back to raw parsing.
    auto stale = session.Execute(daily_queries[0]);
    const bool fell_back =
        stale.ok() && stale->metrics.parse.records_parsed > 0;

    // Midnight: re-populate against the grown table (also records today's
    // queries into the collector for future predictions).
    for (int rep = 0; rep < 3; ++rep) {
      QueryRecord q;
      q.date = day;
      q.paths = query_paths;
      session.RecordQuery(q);
    }
    auto midnight = session.RunMidnightCycle(day + 1);
    if (!midnight.ok()) {
      std::fprintf(stderr, "midnight failed: %s\n",
                   midnight.status().ToString().c_str());
      return 1;
    }

    // Next day's workload, cached vs baseline.
    double cached_ms = 0;
    double plain_ms = 0;
    for (const std::string& sql : daily_queries) {
      auto warm = session.Execute(sql);
      auto cold = session.ExecuteWithoutCache(sql);
      if (!warm.ok() || !cold.ok()) {
        std::fprintf(stderr, "query failed\n");
        return 1;
      }
      cached_ms += warm->metrics.TotalSeconds() * 1e3;
      plain_ms += cold->metrics.TotalSeconds() * 1e3;
    }
    std::printf("%-5d %14.1f %14.1f %8.1fx %12.1f %11s\n", day, plain_ms,
                cached_ms, plain_ms / std::max(1e-3, cached_ms),
                midnight->caching.total_seconds * 1e3,
                fell_back ? "fell back" : "cache hit?!");
  }
  std::printf("\nshape: every day the load invalidates, queries still answer "
              "correctly from raw data,\nand the midnight cycle restores the "
              "cached speedup for the following day.\n");
  return 0;
}
