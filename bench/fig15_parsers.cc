// Fig. 15: per-query running time of the ten Table II queries under
// Spark+Jackson, Spark+Mison, Maxson, and Maxson+Mison (cache limit at the
// "300GB"-equivalent, i.e. most MPJPs cached).
//
// Paper shape: Mison cuts Spark's parse time notably (most where the JSON
// pattern is stable); for queries whose paths are cached, Maxson beats
// even Mison because it pays no parsing at all; queries whose paths were
// not cached (Q1/Q5/Q8 in the paper) benefit from Mison as a complement.

#include <cstdio>
#include <set>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "catalog/catalog.h"
#include "core/maxson.h"
#include "workload/query_templates.h"

using maxson::core::MaxsonConfig;
using maxson::core::MaxsonSession;
using maxson::core::ScoredMpjp;
using maxson::engine::JsonBackend;
using maxson::workload::BenchmarkQuery;

int main() {
  maxson::bench::PrintHeader(
      "Fig. 15 — Spark+Jackson vs Spark+Mison vs Maxson vs Maxson+Mison",
      "Mison speeds up parsing (best on stable schemas); cached queries "
      "run fastest under Maxson; Mison complements uncached paths");

  maxson::bench::BenchWorkspace workspace("fig15");
  maxson::catalog::Catalog catalog;
  maxson::workload::BenchmarkSuiteOptions suite;
  suite.bytes_per_table = 4ull << 20;
  suite.max_rows = 20000;
  auto queries = maxson::workload::MakeTableIIQueries(suite);
  std::printf("generating the 10 Table II tables...\n");
  if (auto st = maxson::workload::GenerateBenchmarkTables(
          queries, workspace.dir() + "/warehouse", suite, &catalog);
      !st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }

  // Two sessions sharing one cache: DOM-backed and Mison-backed engines.
  MaxsonConfig dom_config;
  dom_config.cache_root = workspace.dir() + "/cache";
  dom_config.engine.default_database = "bench";
  dom_config.predictor.epochs = 6;
  MaxsonSession dom(&catalog, dom_config);

  MaxsonConfig mison_config = dom_config;
  mison_config.engine.json_backend = JsonBackend::kMison;
  MaxsonSession mison(&catalog, mison_config);

  // History + training on the DOM session; 75%-of-footprint budget models
  // the paper's 300 GB setting (not everything fits; Q1/Q5/Q8-style
  // leftovers stay uncached).
  for (int day = 0; day < 14; ++day) {
    for (const BenchmarkQuery& q : queries) {
      for (int rep = 0; rep < 2; ++rep) {
        maxson::workload::QueryRecord record;
        record.date = day;
        record.paths = q.paths;
        dom.RecordQuery(record);
      }
    }
  }
  if (auto st = dom.TrainPredictor(8, 13); !st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }
  const auto predicted = dom.PredictMpjps(14);
  auto scored = dom.ScoreCandidates(predicted, 14);
  if (!scored.ok()) {
    std::fprintf(stderr, "%s\n", scored.status().ToString().c_str());
    return 1;
  }
  uint64_t total_bytes = 0;
  for (const auto& s : *scored) total_bytes += s.candidate.estimated_cache_bytes;
  auto selected = maxson::core::SelectWithinBudget(
      *scored, static_cast<uint64_t>(total_bytes * 0.75));
  auto stats = dom.CacheSelected(selected, 14);
  if (!stats.ok()) {
    std::fprintf(stderr, "%s\n", stats.status().ToString().c_str());
    return 1;
  }
  // Mirror the registry into the Mison session (shared cache tables).
  mison.ImportCacheEntries(dom.registry().Snapshot());
  std::set<std::string> cached_keys;
  for (const auto& s : selected) cached_keys.insert(s.candidate.location.Key());
  std::printf("cached %zu/%zu MPJPs at the 75%%-footprint budget\n\n",
              selected.size(), scored->size());

  std::printf("%-5s %7s | %14s %12s %8s %12s | %s\n", "query", "cached",
              "Spark+Jackson", "Spark+Mison", "Maxson", "Maxson+Mison",
              "speedup(Maxson vs Jackson)");
  double sum_speedup = 0;
  double min_speedup = 1e30;
  double max_speedup = 0;
  for (const BenchmarkQuery& q : queries) {
    size_t cached = 0;
    for (const auto& p : q.paths) {
      if (cached_keys.count(p.Key()) != 0) ++cached;
    }
    auto jackson = dom.ExecuteWithoutCache(q.sql);
    auto spark_mison = mison.ExecuteWithoutCache(q.sql);
    auto maxson_run = dom.Execute(q.sql);
    auto maxson_mison = mison.Execute(q.sql);
    if (!jackson.ok() || !spark_mison.ok() || !maxson_run.ok() ||
        !maxson_mison.ok()) {
      std::fprintf(stderr, "%s failed\n", q.name.c_str());
      return 1;
    }
    const double tj = jackson->metrics.TotalSeconds() * 1e3;
    const double tm = spark_mison->metrics.TotalSeconds() * 1e3;
    const double tx = maxson_run->metrics.TotalSeconds() * 1e3;
    const double txm = maxson_mison->metrics.TotalSeconds() * 1e3;
    const double speedup = tj / std::max(1e-9, tx);
    sum_speedup += speedup;
    min_speedup = std::min(min_speedup, speedup);
    max_speedup = std::max(max_speedup, speedup);
    std::printf("%-5s %4zu/%-2zu | %12.1fms %10.1fms %6.1fms %10.1fms | %6.1fx\n",
                q.name.c_str(), cached, q.paths.size(), tj, tm, tx, txm,
                speedup);
  }
  std::printf("\nMaxson speedup over Spark+Jackson: min %.1fx, mean %.1fx, "
              "max %.1fx (paper: 1.5x - 6.5x; Q10 up to 45x)\n",
              min_speedup, sum_speedup / 10.0, max_speedup);
  return 0;
}
