// Fig. 15: per-query running time of the ten Table II queries under
// Spark+Jackson, Spark+Mison, Maxson, and Maxson+Mison (cache limit at the
// "300GB"-equivalent, i.e. most MPJPs cached).
//
// Paper shape: Mison cuts Spark's parse time notably (most where the JSON
// pattern is stable); for queries whose paths are cached, Maxson beats
// even Mison because it pays no parsing at all; queries whose paths were
// not cached (Q1/Q5/Q8 in the paper) benefit from Mison as a complement.

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <set>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "catalog/catalog.h"
#include "common/time_util.h"
#include "core/maxson.h"
#include "json/dom_parser.h"
#include "json/json_path.h"
#include "json/ondemand_parser.h"
#include "workload/data_generator.h"
#include "workload/query_templates.h"

using maxson::core::MaxsonConfig;
using maxson::core::MaxsonSession;
using maxson::core::ScoredMpjp;
using maxson::engine::JsonBackend;
using maxson::workload::BenchmarkQuery;

int main() {
  maxson::bench::PrintHeader(
      "Fig. 15 — Spark+Jackson vs Spark+Mison vs Maxson vs Maxson+Mison",
      "Mison speeds up parsing (best on stable schemas); cached queries "
      "run fastest under Maxson; Mison complements uncached paths");

  maxson::bench::BenchWorkspace workspace("fig15");
  maxson::catalog::Catalog catalog;
  maxson::workload::BenchmarkSuiteOptions suite;
  suite.bytes_per_table = 4ull << 20;
  suite.max_rows = 20000;
  auto queries = maxson::workload::MakeTableIIQueries(suite);
  std::printf("generating the 10 Table II tables...\n");
  if (auto st = maxson::workload::GenerateBenchmarkTables(
          queries, workspace.dir() + "/warehouse", suite, &catalog);
      !st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }

  // Two sessions sharing one cache: DOM-backed and Mison-backed engines.
  MaxsonConfig dom_config;
  dom_config.cache_root = workspace.dir() + "/cache";
  dom_config.engine.default_database = "bench";
  dom_config.predictor.epochs = 6;
  MaxsonSession dom(&catalog, dom_config);

  MaxsonConfig mison_config = dom_config;
  mison_config.engine.json_backend = JsonBackend::kMison;
  MaxsonSession mison(&catalog, mison_config);

  // History + training on the DOM session; 75%-of-footprint budget models
  // the paper's 300 GB setting (not everything fits; Q1/Q5/Q8-style
  // leftovers stay uncached).
  for (int day = 0; day < 14; ++day) {
    for (const BenchmarkQuery& q : queries) {
      for (int rep = 0; rep < 2; ++rep) {
        maxson::workload::QueryRecord record;
        record.date = day;
        record.paths = q.paths;
        dom.RecordQuery(record);
      }
    }
  }
  if (auto st = dom.TrainPredictor(8, 13); !st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }
  const auto predicted = dom.PredictMpjps(14);
  auto scored = dom.ScoreCandidates(predicted, 14);
  if (!scored.ok()) {
    std::fprintf(stderr, "%s\n", scored.status().ToString().c_str());
    return 1;
  }
  uint64_t total_bytes = 0;
  for (const auto& s : *scored) total_bytes += s.candidate.estimated_cache_bytes;
  auto selected = maxson::core::SelectWithinBudget(
      *scored, static_cast<uint64_t>(total_bytes * 0.75));
  auto stats = dom.CacheSelected(selected, 14);
  if (!stats.ok()) {
    std::fprintf(stderr, "%s\n", stats.status().ToString().c_str());
    return 1;
  }
  // Mirror the registry into the Mison session (shared cache tables).
  mison.ImportCacheEntries(dom.registry().Snapshot());
  std::set<std::string> cached_keys;
  for (const auto& s : selected) cached_keys.insert(s.candidate.location.Key());
  std::printf("cached %zu/%zu MPJPs at the 75%%-footprint budget\n\n",
              selected.size(), scored->size());

  std::printf("%-5s %7s | %14s %12s %8s %12s | %s\n", "query", "cached",
              "Spark+Jackson", "Spark+Mison", "Maxson", "Maxson+Mison",
              "speedup(Maxson vs Jackson)");
  double sum_speedup = 0;
  double min_speedup = 1e30;
  double max_speedup = 0;
  struct QueryRow {
    std::string name;
    size_t cached = 0;
    size_t paths = 0;
    double jackson_ms = 0, mison_ms = 0, maxson_ms = 0, maxson_mison_ms = 0;
  };
  std::vector<QueryRow> query_rows;
  for (const BenchmarkQuery& q : queries) {
    size_t cached = 0;
    for (const auto& p : q.paths) {
      if (cached_keys.count(p.Key()) != 0) ++cached;
    }
    auto jackson = dom.ExecuteWithoutCache(q.sql);
    auto spark_mison = mison.ExecuteWithoutCache(q.sql);
    auto maxson_run = dom.Execute(q.sql);
    auto maxson_mison = mison.Execute(q.sql);
    if (!jackson.ok() || !spark_mison.ok() || !maxson_run.ok() ||
        !maxson_mison.ok()) {
      std::fprintf(stderr, "%s failed\n", q.name.c_str());
      return 1;
    }
    const double tj = jackson->metrics.TotalSeconds() * 1e3;
    const double tm = spark_mison->metrics.TotalSeconds() * 1e3;
    const double tx = maxson_run->metrics.TotalSeconds() * 1e3;
    const double txm = maxson_mison->metrics.TotalSeconds() * 1e3;
    const double speedup = tj / std::max(1e-9, tx);
    sum_speedup += speedup;
    min_speedup = std::min(min_speedup, speedup);
    max_speedup = std::max(max_speedup, speedup);
    std::printf("%-5s %4zu/%-2zu | %12.1fms %10.1fms %6.1fms %10.1fms | %6.1fx\n",
                q.name.c_str(), cached, q.paths.size(), tj, tm, tx, txm,
                speedup);
    query_rows.push_back({q.name, cached, q.paths.size(), tj, tm, tx, txm});
  }
  std::printf("\nMaxson speedup over Spark+Jackson: min %.1fx, mean %.1fx, "
              "max %.1fx (paper: 1.5x - 6.5x; Q10 up to 45x)\n",
              min_speedup, sum_speedup / 10.0, max_speedup);

  // --- On-demand tier: path-count sweep -----------------------------------
  // Same records, growing path sets. Three uncached extraction strategies:
  //   dom_per_path  k independent GetJsonObject calls (one full DOM parse
  //                 each — what the engine's raw fallback did before the
  //                 on-demand tier),
  //   dom_once      one DOM parse, k path evaluations over the tree,
  //   ondemand      one structural tape, k forward-only cursors that skip
  //                 unrequested siblings without touching their bytes.
  // The crossover is the smallest k where dom_once catches up: below it the
  // on-demand tier wins because most of the record's bytes are never
  // token-parsed; past it the single DOM parse amortizes across paths.
  std::printf("\nOn-demand sweep: extracting k paths per record "
              "(uncached, 40-property ~2KB records)\n");
  maxson::workload::JsonTableSpec sweep_spec;
  sweep_spec.table = "sweep";
  sweep_spec.num_properties = 40;
  sweep_spec.nesting_level = 3;
  sweep_spec.avg_json_bytes = 2000;
  sweep_spec.seed = 15;
  const size_t kDocs = 2000;
  std::vector<std::string> docs;
  docs.reserve(kDocs);
  size_t doc_bytes = 0;
  for (size_t i = 0; i < kDocs; ++i) {
    docs.push_back(maxson::workload::GenerateJsonRecord(sweep_spec, i));
    doc_bytes += docs.back().size();
  }

  struct SweepPoint {
    int paths = 0;
    double dom_per_path_ms = 0;
    double dom_once_ms = 0;
    double ondemand_ms = 0;
    double skipped_fraction = 0;
  };
  std::vector<SweepPoint> sweep;
  std::printf("%5s | %12s %10s %10s | %s\n", "paths", "dom-per-path",
              "dom-once", "on-demand", "bytes skipped");
  for (const int k : {1, 2, 3, 4, 6, 8}) {
    std::vector<maxson::json::JsonPath> paths;
    for (int p = 0; p < k; ++p) {
      auto parsed =
          maxson::json::JsonPath::Parse("$.f" + std::to_string(p + 2));
      if (!parsed.ok()) {
        std::fprintf(stderr, "%s\n", parsed.status().ToString().c_str());
        return 1;
      }
      paths.push_back(std::move(*parsed));
    }
    SweepPoint point;
    point.paths = k;
    size_t checksum_a = 0, checksum_b = 0, checksum_c = 0;

    maxson::Stopwatch per_path_timer;
    for (const std::string& doc : docs) {
      for (const auto& path : paths) {
        auto v = maxson::json::GetJsonObject(doc, path);
        if (v.ok()) checksum_a += v->size();
      }
    }
    point.dom_per_path_ms = per_path_timer.ElapsedSeconds() * 1e3;

    maxson::Stopwatch once_timer;
    for (const std::string& doc : docs) {
      auto root = maxson::json::ParseJson(doc);
      if (!root.ok()) continue;
      for (const auto& path : paths) {
        const maxson::json::JsonValue* node = path.Evaluate(*root);
        if (node != nullptr) {
          checksum_b += maxson::json::RenderGetJsonObjectResult(*node).size();
        }
      }
    }
    point.dom_once_ms = once_timer.ElapsedSeconds() * 1e3;

    maxson::json::OndemandParser ondemand;
    maxson::Stopwatch ondemand_timer;
    for (const std::string& doc : docs) {
      std::vector<maxson::Result<std::string>> values;
      if (!ondemand.ExtractAll(doc, paths, &values).ok()) continue;
      for (const auto& v : values) {
        if (v.ok()) checksum_c += v->size();
      }
    }
    point.ondemand_ms = ondemand_timer.ElapsedSeconds() * 1e3;
    point.skipped_fraction =
        static_cast<double>(ondemand.skipped_bytes()) /
        static_cast<double>(doc_bytes);
    if (checksum_a != checksum_b || checksum_b != checksum_c) {
      std::fprintf(stderr, "extraction mismatch at k=%d (%zu/%zu/%zu)\n", k,
                   checksum_a, checksum_b, checksum_c);
      return 1;
    }
    std::printf("%5d | %10.1fms %8.1fms %8.1fms | %4.0f%%\n", k,
                point.dom_per_path_ms, point.dom_once_ms, point.ondemand_ms,
                point.skipped_fraction * 100);
    sweep.push_back(point);
  }
  int crossover = 0;  // 0 = on-demand won at every measured path count
  for (const SweepPoint& p : sweep) {
    if (p.dom_once_ms < p.ondemand_ms) {
      crossover = p.paths;
      break;
    }
  }
  if (crossover == 0) {
    std::printf("on-demand beat dom-once at every measured path count\n");
  } else {
    std::printf("crossover: dom-once catches up at %d paths\n", crossover);
  }

  std::ofstream json("BENCH_parsers.json", std::ios::trunc);
  json << "{\n  \"bench\": \"fig15_parsers\",\n  \"queries\": [\n";
  for (size_t i = 0; i < query_rows.size(); ++i) {
    const QueryRow& r = query_rows[i];
    json << "    {\"name\": \"" << r.name << "\", \"cached_paths\": "
         << r.cached << ", \"total_paths\": " << r.paths
         << ", \"spark_jackson_ms\": " << r.jackson_ms
         << ", \"spark_mison_ms\": " << r.mison_ms
         << ", \"maxson_ms\": " << r.maxson_ms
         << ", \"maxson_mison_ms\": " << r.maxson_mison_ms << "}"
         << (i + 1 < query_rows.size() ? "," : "") << "\n";
  }
  json << "  ],\n  \"ondemand_sweep\": {\n    \"docs\": " << kDocs
       << ",\n    \"avg_doc_bytes\": "
       << static_cast<double>(doc_bytes) / static_cast<double>(kDocs)
       << ",\n    \"points\": [\n";
  for (size_t i = 0; i < sweep.size(); ++i) {
    const SweepPoint& p = sweep[i];
    json << "      {\"paths\": " << p.paths << ", \"dom_per_path_ms\": "
         << p.dom_per_path_ms << ", \"dom_once_ms\": " << p.dom_once_ms
         << ", \"ondemand_ms\": " << p.ondemand_ms
         << ", \"skipped_fraction\": " << p.skipped_fraction << "}"
         << (i + 1 < sweep.size() ? "," : "") << "\n";
  }
  json << "    ],\n    \"crossover_paths\": " << crossover
       << "\n  }\n}\n";
  std::printf("wrote BENCH_parsers.json\n");
  return 0;
}
