// Fig. 14: Maxson's prediction-based caching vs conventional online
// caching with LRU replacement — cache hit ratio and total execution time.
//
// Substitution note (DESIGN.md): the paper replays the full production
// trace on a cluster. We replay the synthetic trace through a calibrated
// cost model: per JSONPath access, a miss costs the measured parse time of
// one record-batch scan, a hit costs the measured cache-read time. The LRU
// baseline admits values only after a query pays the miss; Maxson
// pre-parses its predicted MPJPs at midnight (pre-parse cost charged
// off-peak, matching the paper's setup). The claim under test is the
// *mechanism* gap: LRU misses the first access of each day and evicts
// values that other users still need; prediction-based caching serves the
// first access warm.

#include <cstdio>
#include <map>
#include <set>
#include <string>

#include "bench/bench_util.h"
#include "common/time_util.h"
#include "core/collector.h"
#include "core/lru_cache.h"
#include "core/predictor.h"
#include "json/dom_parser.h"
#include "json/json_path.h"
#include "workload/data_generator.h"
#include "workload/trace_generator.h"

using maxson::core::JsonPathCollector;
using maxson::core::LruValueCache;

namespace {

/// Measures per-access costs on real data: DOM-parse a record vs read a
/// cached value.
struct CostModel {
  double parse_seconds_per_access;
  double read_seconds_per_access;
};

CostModel Calibrate() {
  maxson::workload::JsonTableSpec spec;
  spec.table = "calib";
  spec.num_properties = 17;
  spec.avg_json_bytes = 800;
  std::vector<std::string> records;
  for (int i = 0; i < 2000; ++i) {
    records.push_back(
        maxson::workload::GenerateJsonRecord(spec, static_cast<uint64_t>(i)));
  }
  auto path = maxson::json::JsonPath::Parse("$.f2");
  maxson::Stopwatch parse_timer;
  size_t hits = 0;
  for (const std::string& r : records) {
    auto v = maxson::json::GetJsonObject(r, *path);
    if (v.ok()) ++hits;
  }
  const double parse = parse_timer.ElapsedSeconds() / records.size();
  // Cached read: string copy of the (small) extracted value.
  std::vector<std::string> cached(records.size(), "42");
  maxson::Stopwatch read_timer;
  size_t total = 0;
  for (const std::string& v : cached) total += v.size();
  double read = read_timer.ElapsedSeconds() / records.size();
  // Floor the read cost at a realistic fraction: I/O still happens.
  read = std::max(read, parse / 50.0);
  (void)hits;
  (void)total;
  return CostModel{parse, read};
}

}  // namespace

int main() {
  maxson::bench::PrintHeader(
      "Fig. 14 — Maxson (prediction-based) vs online LRU caching",
      "LRU has lower hit ratio and higher execution time: first accesses "
      "miss, and spatially-correlated queries arrive too close together");

  const CostModel cost = Calibrate();
  std::printf("cost model: miss=%.1f us/access (parse), hit=%.2f us/access "
              "(cache read)\n\n",
              cost.parse_seconds_per_access * 1e6,
              cost.read_seconds_per_access * 1e6);

  maxson::workload::TraceGeneratorConfig trace_config;
  trace_config.num_days = 45;
  const auto trace = maxson::workload::GenerateTrace(trace_config);
  JsonPathCollector collector;
  collector.RecordTrace(trace);

  // Train the predictor on history (target days 10..30).
  maxson::core::PredictorConfig predictor_config;
  predictor_config.epochs = 8;
  maxson::core::JsonPathPredictor predictor(predictor_config);
  auto samples = predictor.BuildDataset(collector, 10, 30);
  if (auto st = predictor.Train(samples); !st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }

  // Per-path synthetic value footprint (bytes per cached path per day):
  // proportional to popularity-independent record counts; keep it simple
  // and uniform.
  const uint64_t kBytesPerPath = 1 << 20;
  // Cache capacity: half of the average daily MPJP footprint, so both
  // systems face real pressure.
  std::set<std::string> sample_day_mpjps;
  for (const auto& key : collector.PathsWithCountAtLeast(32, 2)) {
    sample_day_mpjps.insert(key);
  }
  const uint64_t capacity =
      kBytesPerPath * std::max<uint64_t>(1, sample_day_mpjps.size() / 2);
  std::printf("cache capacity: %llu MiB (half of a typical day's MPJP "
              "footprint)\n\n",
              static_cast<unsigned long long>(capacity >> 20));

  // --- Online LRU replay over the evaluation window (days 32..44). ---
  LruValueCache lru(capacity);
  double lru_time = 0.0;
  int current_day = -1;
  for (const auto& query : trace.queries) {
    if (query.date < 32 || query.date > 44) continue;
    if (query.date != current_day) {
      // Data updated daily: yesterday's parsed values are stale.
      lru.Clear();
      current_day = query.date;
    }
    for (const auto& path : query.paths) {
      const std::string key = path.Key();
      if (lru.Get(key)) {
        lru_time += cost.read_seconds_per_access;
      } else {
        lru_time += cost.parse_seconds_per_access;
        lru.Put(key, kBytesPerPath);
      }
    }
  }

  // --- Maxson replay: midnight pre-caching from predictions. ---
  uint64_t maxson_hits = 0;
  uint64_t maxson_misses = 0;
  double maxson_time = 0.0;
  double precache_time = 0.0;
  for (int day = 32; day <= 44; ++day) {
    const auto predicted_vec = predictor.PredictMpjps(collector, day);
    // Budgeted admission in score order is approximated by popularity
    // order here; capacity allows half the set.
    std::set<std::string> cached;
    uint64_t used = 0;
    for (const auto& key : predicted_vec) {
      if (used + kBytesPerPath > capacity) break;
      cached.insert(key);
      used += kBytesPerPath;
      precache_time += cost.parse_seconds_per_access;  // off-peak pre-parse
    }
    for (const auto& query : trace.queries) {
      if (query.date != day) continue;
      for (const auto& path : query.paths) {
        if (cached.count(path.Key()) != 0) {
          ++maxson_hits;
          maxson_time += cost.read_seconds_per_access;
        } else {
          ++maxson_misses;
          maxson_time += cost.parse_seconds_per_access;
        }
      }
    }
  }
  const double maxson_ratio =
      static_cast<double>(maxson_hits) /
      static_cast<double>(std::max<uint64_t>(1, maxson_hits + maxson_misses));

  std::printf("%-28s %12s %16s\n", "policy", "hit ratio", "exec time (s)");
  std::printf("%-28s %11.1f%% %16.2f\n", "online LRU", lru.HitRatio() * 100,
              lru_time);
  std::printf("%-28s %11.1f%% %16.2f   (+%.2f s off-peak pre-parse)\n",
              "Maxson (prediction-based)", maxson_ratio * 100, maxson_time,
              precache_time);
  std::printf("\nMaxson hit ratio higher: %s; Maxson exec time lower: %s "
              "(paper: yes / yes)\n",
              maxson_ratio > lru.HitRatio() ? "YES" : "NO",
              maxson_time < lru_time ? "YES" : "NO");
  return 0;
}
