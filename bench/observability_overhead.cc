// Instrumentation overhead of the observability layer on a Fig.-12-style
// cached query (Q2): per-operator stats, metric publication, and — when
// enabled — trace spans all run inside Execute(), so their cost must stay
// in the noise (<5% of query time).
//
// Writes BENCH_observability.json with the measured medians and the
// overhead of tracing on vs off.

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "catalog/catalog.h"
#include "common/time_util.h"
#include "core/maxson.h"
#include "workload/query_templates.h"

using maxson::core::MaxsonConfig;
using maxson::core::MaxsonSession;
using maxson::workload::BenchmarkQuery;

namespace {

/// Median wall seconds of `repeats` executions of `sql`.
double MedianSeconds(MaxsonSession* session, const std::string& sql,
                     int repeats) {
  std::vector<double> times;
  times.reserve(repeats);
  for (int i = 0; i < repeats; ++i) {
    maxson::Stopwatch timer;
    auto result = session->Execute(sql);
    if (!result.ok()) {
      std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
      std::exit(1);
    }
    times.push_back(timer.ElapsedSeconds());
  }
  std::sort(times.begin(), times.end());
  return times[times.size() / 2];
}

}  // namespace

int main() {
  maxson::bench::PrintHeader(
      "Observability overhead — instrumented query time, tracing off vs on",
      "per-operator stats, metric publication and trace spans must cost "
      "<5% of a Fig.-12-style cached query");

  maxson::bench::BenchWorkspace workspace("obs_overhead");
  maxson::catalog::Catalog catalog;
  maxson::workload::BenchmarkSuiteOptions suite;
  suite.bytes_per_table = 6ull << 20;
  suite.max_rows = 30000;
  auto all_queries = maxson::workload::MakeTableIIQueries(suite);
  std::vector<BenchmarkQuery> queries;
  for (auto& q : all_queries) {
    if (q.name == "Q2") queries.push_back(std::move(q));
  }
  if (auto st = maxson::workload::GenerateBenchmarkTables(
          queries, workspace.dir() + "/warehouse", suite, &catalog);
      !st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }

  maxson::obs::MetricsRegistry registry;
  MaxsonConfig config;
  config.cache_root = workspace.dir() + "/cache";
  config.engine.default_database = "bench";
  config.predictor.epochs = 6;
  config.metrics = &registry;
  MaxsonSession session(&catalog, config);
  for (int day = 0; day < 14; ++day) {
    for (const BenchmarkQuery& q : queries) {
      for (int rep = 0; rep < 2; ++rep) {
        maxson::workload::QueryRecord record;
        record.date = day;
        record.paths = q.paths;
        session.RecordQuery(record);
      }
    }
  }
  if (auto st = session.TrainPredictor(8, 13); !st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }
  if (auto report = session.RunMidnightCycle(14); !report.ok()) {
    std::fprintf(stderr, "%s\n", report.status().ToString().c_str());
    return 1;
  }

  const std::string& sql = queries[0].sql;
  const int kRepeats = 31;
  MedianSeconds(&session, sql, 5);  // warm up page cache and code paths

  const double off_s = MedianSeconds(&session, sql, kRepeats);

  maxson::core::SessionUpdate enable_tracing;
  enable_tracing.tracing = true;
  if (auto st = session.UpdateConfig(enable_tracing); !st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }
  const double on_s = MedianSeconds(&session, sql, kRepeats);
  session.ClearTrace();

  const double overhead_pct = off_s <= 0 ? 0 : (on_s - off_s) / off_s * 100.0;
  const bool pass = overhead_pct < 5.0;
  std::printf("Q2 cached, median of %d runs:\n", kRepeats);
  std::printf("  metrics only (tracing off): %8.2f ms\n", off_s * 1e3);
  std::printf("  metrics + trace spans:      %8.2f ms\n", on_s * 1e3);
  std::printf("  tracing overhead:           %+7.1f%%  (budget <5%%: %s)\n",
              overhead_pct, pass ? "PASS" : "FAIL");
  std::printf("  counter series published:   %zu\n",
              registry.CounterTotals().size());

  std::ofstream json("BENCH_observability.json", std::ios::trunc);
  json << "{\n  \"bench\": \"observability_overhead\",\n"
       << "  \"query\": \"Q2\",\n"
       << "  \"repeats\": " << kRepeats << ",\n"
       << "  \"tracing_off_ms\": " << off_s * 1e3 << ",\n"
       << "  \"tracing_on_ms\": " << on_s * 1e3 << ",\n"
       << "  \"overhead_percent\": " << overhead_pct << ",\n"
       << "  \"budget_percent\": 5.0,\n"
       << "  \"pass\": " << (pass ? "true" : "false") << "\n}\n";
  json.close();
  std::printf("wrote BENCH_observability.json\n");
  return pass ? 0 : 1;
}
