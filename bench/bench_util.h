#ifndef MAXSON_BENCH_BENCH_UTIL_H_
#define MAXSON_BENCH_BENCH_UTIL_H_

#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <string>

namespace maxson::bench {

/// Scratch directory for a bench's generated warehouse; removed on
/// destruction unless KEEP_BENCH_DATA=1 is set.
class BenchWorkspace {
 public:
  explicit BenchWorkspace(const std::string& name) {
    dir_ = (std::filesystem::temp_directory_path() /
            ("maxson_bench_" + name + "_" + std::to_string(::getpid())))
               .string();
    std::filesystem::remove_all(dir_);
    std::filesystem::create_directories(dir_);
  }
  ~BenchWorkspace() {
    if (std::getenv("KEEP_BENCH_DATA") == nullptr) {
      std::filesystem::remove_all(dir_);
    }
  }
  const std::string& dir() const { return dir_; }

 private:
  std::string dir_;
};

inline void PrintHeader(const char* experiment, const char* paper_claim) {
  std::printf("==============================================================\n");
  std::printf("%s\n", experiment);
  std::printf("paper: %s\n", paper_claim);
  std::printf("==============================================================\n");
}

}  // namespace maxson::bench

#endif  // MAXSON_BENCH_BENCH_UTIL_H_
