// Fig. 3: parsing and query processing cost in three common query types.
//
// Q1 is a simple SELECT retrieving two attributes from the JSON data, Q2 a
// COUNT with GROUP BY, Q3 a self-equijoin — run over Nobench-style JSON in
// the mini-engine with the DOM (Jackson-style) parser. The paper reports
// that parsing accounts for >= 80% of execution time in all three.

#include <cstdio>
#include <string>

#include "bench/bench_util.h"
#include "catalog/catalog.h"
#include "engine/engine.h"
#include "workload/data_generator.h"

using maxson::engine::EngineConfig;
using maxson::engine::QueryEngine;
using maxson::engine::QueryResult;

int main() {
  maxson::bench::PrintHeader(
      "Fig. 3 — parsing vs query processing cost (Q1 select / Q2 "
      "group-by count / Q3 self-join)",
      "parsing JSON accounts for the majority (>= 80%) of execution time");

  maxson::bench::BenchWorkspace workspace("fig03");
  maxson::catalog::Catalog catalog;

  // Nobench-flavored table: moderately wide flat JSON records.
  maxson::workload::JsonTableSpec spec;
  spec.database = "nobench";
  spec.table = "data";
  spec.num_properties = 20;
  spec.avg_json_bytes = 800;
  spec.rows = 30000;
  spec.rows_per_file = 10000;
  auto table = maxson::workload::GenerateJsonTable(spec, workspace.dir(), 3,
                                                   &catalog);
  if (!table.ok()) {
    std::fprintf(stderr, "%s\n", table.status().ToString().c_str());
    return 1;
  }

  struct NamedQuery {
    const char* name;
    const char* description;
    std::string sql;
  };
  const NamedQuery queries[] = {
      {"Q1", "simple SELECT of two JSON attributes",
       "SELECT get_json_object(payload, '$.f1') AS a, "
       "get_json_object(payload, '$.f2') AS b FROM nobench.data"},
      {"Q2", "COUNT with GROUP BY",
       "SELECT get_json_object(payload, '$.f1') AS k, COUNT(*) AS n "
       "FROM nobench.data GROUP BY get_json_object(payload, '$.f1')"},
      {"Q3", "self-equijoin on a JSON attribute",
       "SELECT a.id FROM nobench.data a JOIN nobench.data b ON "
       "get_json_object(a.payload, '$.f0') = "
       "get_json_object(b.payload, '$.f0') "
       "WHERE to_int(get_json_object(a.payload, '$.f0')) < 3000"},
  };

  QueryEngine engine(&catalog, EngineConfig{});
  std::printf("%-4s %-40s %10s %10s %10s %8s\n", "", "query", "read(ms)",
              "parse(ms)", "compute(ms)", "parse%");
  bool all_dominated = true;
  for (const NamedQuery& q : queries) {
    auto result = engine.Execute(q.sql);
    if (!result.ok()) {
      std::fprintf(stderr, "%s failed: %s\n", q.name,
                   result.status().ToString().c_str());
      return 1;
    }
    const auto& m = result->metrics;
    const double total = m.TotalSeconds();
    const double parse_share = total == 0 ? 0 : m.parse_seconds / total;
    std::printf("%-4s %-40s %10.1f %10.1f %10.1f %7.1f%%\n", q.name,
                q.description, m.read_seconds * 1e3, m.parse_seconds * 1e3,
                m.compute_seconds * 1e3, parse_share * 100);
    if (parse_share < 0.5) all_dominated = false;
  }
  std::printf("\nparsing dominates all three queries: %s "
              "(paper threshold: ~80%%)\n",
              all_dominated ? "YES" : "NO");
  return 0;
}
