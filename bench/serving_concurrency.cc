// Serving-layer benchmark: a recurring dashboard workload (Table II
// queries replayed by concurrent clients) against MaxsonServer, measuring
// what the semantic result cache buys on repeats, that answers stay
// byte-identical while a midnight-style registry churn races the clients,
// and that admission control rejects overload fast with a typed status.
//
// Writes BENCH_serving.json. Exits nonzero when any acceptance threshold
// is missed: hit rate >= 0.80, repeat p50 at least 5x below cold p50,
// zero wrong results, at least one counted fast rejection.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "catalog/catalog.h"
#include "common/time_util.h"
#include "core/maxson.h"
#include "engine/fingerprint.h"
#include "obs/metrics_registry.h"
#include "serve/server.h"
#include "workload/query_templates.h"

using maxson::core::MaxsonConfig;
using maxson::core::MaxsonSession;
using maxson::serve::ClientSession;
using maxson::serve::MaxsonServer;
using maxson::serve::ServeOptions;
using maxson::workload::BenchmarkQuery;

namespace {

double P50Ms(std::vector<double> seconds) {
  if (seconds.empty()) return 0;
  std::sort(seconds.begin(), seconds.end());
  return seconds[seconds.size() / 2] * 1e3;
}

/// A registry entry for a table no benchmark query touches: importing it
/// bumps CacheRegistry::version() exactly like a midnight Put does,
/// without perturbing any running plan.
maxson::core::CacheEntry ChurnEntry(int i) {
  maxson::core::CacheEntry entry;
  entry.location.database = "bench";
  entry.location.table = "unrelated";
  entry.location.column = "c";
  entry.location.path = "$.f" + std::to_string(i % 7);
  entry.cache_table_dir = "/nonexistent/churn";
  entry.cache_field = "f";
  entry.cache_time = i;
  return entry;
}

}  // namespace

int main() {
  maxson::bench::PrintHeader(
      "Serving concurrency — result-cache hit rate, repeat speedup, "
      "admission under a 4-client recurring workload",
      "recurring queries dominate analytical workloads; serving repeats "
      "from a semantic result cache removes re-execution entirely");

  maxson::bench::BenchWorkspace workspace("serving");
  maxson::catalog::Catalog catalog;
  maxson::workload::BenchmarkSuiteOptions suite;
  suite.bytes_per_table = 2ull << 20;
  suite.max_rows = 12000;
  suite.rows_per_file = 3000;
  auto all_queries = maxson::workload::MakeTableIIQueries(suite);
  constexpr size_t kDistinct = 8;
  std::vector<BenchmarkQuery> queries(
      all_queries.begin(),
      all_queries.begin() +
          std::min(kDistinct, all_queries.size()));
  if (auto st = maxson::workload::GenerateBenchmarkTables(
          queries, workspace.dir() + "/warehouse", suite, &catalog);
      !st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }

  maxson::obs::MetricsRegistry metrics;
  MaxsonConfig config;
  config.cache_root = workspace.dir() + "/cache";
  config.engine.default_database = "bench";
  config.metrics = &metrics;
  MaxsonSession session(&catalog, config);
  MaxsonServer server(&session, &catalog, ServeOptions{});

  const unsigned cores = std::thread::hardware_concurrency();
  std::printf("machine: %u hardware thread(s), %zu distinct queries\n\n",
              cores, queries.size());

  // ---- Phase 1: cold executions (populate + time the uncached path) ----
  std::vector<std::string> expected(queries.size());
  std::vector<double> cold_seconds;
  ClientSession loader = server.Connect("loader");
  for (size_t q = 0; q < queries.size(); ++q) {
    maxson::Stopwatch timer;
    auto cold = loader.Execute(queries[q].sql);
    const double elapsed = timer.ElapsedSeconds();
    if (!cold.ok() || cold->result_cache_hit) {
      std::fprintf(stderr, "%s cold run failed: %s\n",
                   queries[q].name.c_str(),
                   cold.ok() ? "unexpected hit" : cold.status().ToString().c_str());
      return 1;
    }
    cold_seconds.push_back(elapsed);
    expected[q] = maxson::engine::FingerprintBatch(cold->result.batch);
    // Every query must be servable from cache, or the trace below cannot
    // reach its hit rate — fail loudly naming the query instead.
    auto warm = loader.Execute(queries[q].sql);
    if (!warm.ok() || !warm->result_cache_hit ||
        maxson::engine::FingerprintBatch(warm->result.batch) != expected[q]) {
      std::fprintf(stderr, "%s did not serve from the result cache\n",
                   queries[q].name.c_str());
      return 1;
    }
  }

  // ---- Phase 2: recurring trace, 4 concurrent clients ----
  constexpr int kClients = 4;
  constexpr int kTraceRequests = 200;
  std::atomic<int> next_request{0};
  std::atomic<int> wrong_results{0};
  std::vector<std::vector<double>> hit_seconds(kClients);
  std::atomic<int> failed{0};
  {
    std::vector<std::thread> clients;
    clients.reserve(kClients);
    for (int c = 0; c < kClients; ++c) {
      clients.emplace_back([&, c] {
        ClientSession client =
            server.Connect("dashboard" + std::to_string(c));
        for (;;) {
          const int r = next_request.fetch_add(1);
          if (r >= kTraceRequests) break;
          const size_t q = static_cast<size_t>(r * 7 + 3) % queries.size();
          maxson::Stopwatch timer;
          auto outcome = client.Execute(queries[q].sql);
          const double elapsed = timer.ElapsedSeconds();
          if (!outcome.ok()) {
            failed.fetch_add(1);
            continue;
          }
          if (maxson::engine::FingerprintBatch(outcome->result.batch) !=
              expected[q]) {
            wrong_results.fetch_add(1);
          }
          if (outcome->result_cache_hit) {
            hit_seconds[static_cast<size_t>(c)].push_back(elapsed);
          }
        }
      });
    }
    for (std::thread& t : clients) t.join();
  }
  const auto trace_stats = server.result_cache_stats();
  const double hit_rate =
      static_cast<double>(trace_stats.hits) /
      static_cast<double>(trace_stats.hits + trace_stats.misses);

  std::vector<double> all_hits;
  for (const auto& v : hit_seconds) {
    all_hits.insert(all_hits.end(), v.begin(), v.end());
  }
  const double cold_p50_ms = P50Ms(cold_seconds);
  const double hit_p50_ms = P50Ms(all_hits);
  const double speedup = hit_p50_ms > 0 ? cold_p50_ms / hit_p50_ms : 0;
  std::printf("trace: %d requests, %zu served from cache, hit rate %.3f\n",
              kTraceRequests, all_hits.size(), hit_rate);
  std::printf("p50: cold %.2f ms, repeat %.4f ms (%.0fx)\n", cold_p50_ms,
              hit_p50_ms, speedup);

  // ---- Phase 3: clients racing a midnight-style registry churn ----
  constexpr int kChurnRequests = 100;
  next_request.store(0);
  std::atomic<bool> stop_churn{false};
  std::thread churner([&session, &stop_churn] {
    int i = 0;
    while (!stop_churn.load()) {
      session.ImportCacheEntries({ChurnEntry(i++)});
      std::this_thread::sleep_for(std::chrono::microseconds(500));
    }
  });
  {
    std::vector<std::thread> clients;
    for (int c = 0; c < kClients; ++c) {
      clients.emplace_back([&, c] {
        ClientSession client = server.Connect("race" + std::to_string(c));
        for (;;) {
          const int r = next_request.fetch_add(1);
          if (r >= kChurnRequests) break;
          const size_t q = static_cast<size_t>(r) % queries.size();
          auto outcome = client.Execute(queries[q].sql);
          if (!outcome.ok()) {
            failed.fetch_add(1);
            continue;
          }
          if (maxson::engine::FingerprintBatch(outcome->result.batch) !=
              expected[q]) {
            wrong_results.fetch_add(1);
          }
        }
      });
    }
    for (std::thread& t : clients) t.join();
  }
  stop_churn.store(true);
  churner.join();
  std::printf("churn race: %d requests, %d wrong results, %d failed\n",
              kChurnRequests, wrong_results.load(), failed.load());

  // ---- Phase 4: overload rejection (typed, counted, fast) ----
  server.EnableResultCache(false);  // force real executions that overlap
  server.SetTenantLimits("burst", maxson::serve::TenantLimits{1, 0});
  std::atomic<int> typed_rejections{0};
  std::atomic<int> untyped_failures{0};
  double worst_rejection_ms = 0;
  std::mutex rejection_mutex;
  {
    std::vector<std::thread> clients;
    for (int c = 0; c < kClients; ++c) {
      clients.emplace_back([&] {
        ClientSession client = server.Connect("burst");
        for (int round = 0; round < 2; ++round) {
          maxson::Stopwatch timer;
          auto outcome = client.Execute(queries[0].sql);
          const double elapsed = timer.ElapsedSeconds();
          if (outcome.ok()) continue;
          if (outcome.status().IsResourceExhausted()) {
            typed_rejections.fetch_add(1);
            std::lock_guard<std::mutex> lock(rejection_mutex);
            worst_rejection_ms = std::max(worst_rejection_ms, elapsed * 1e3);
          } else {
            untyped_failures.fetch_add(1);
          }
        }
      });
    }
    for (std::thread& t : clients) t.join();
  }
  server.EnableResultCache(true);
  const uint64_t rejected_metric =
      metrics.GetCounter("maxson_serve_rejected_total", {{"tenant", "burst"}})
          ->value();
  std::printf(
      "overload: %d typed rejections (worst %.2f ms), %d untyped, "
      "counter %llu\n",
      typed_rejections.load(), worst_rejection_ms, untyped_failures.load(),
      static_cast<unsigned long long>(rejected_metric));

  // ---- Verdict + JSON ----
  const bool ok = hit_rate >= 0.80 && speedup >= 5.0 &&
                  wrong_results.load() == 0 && failed.load() == 0 &&
                  typed_rejections.load() >= 1 && untyped_failures.load() == 0 &&
                  rejected_metric ==
                      static_cast<uint64_t>(typed_rejections.load());
  std::ofstream json("BENCH_serving.json", std::ios::trunc);
  json << "{\n  \"bench\": \"serving_concurrency\",\n";
  json << "  \"hardware_concurrency\": " << cores << ",\n";
  json << "  \"clients\": " << kClients << ",\n";
  json << "  \"distinct_queries\": " << queries.size() << ",\n";
  json << "  \"trace_requests\": " << kTraceRequests << ",\n";
  json << "  \"churn_requests\": " << kChurnRequests << ",\n";
  json << "  \"hit_rate\": " << hit_rate << ",\n";
  json << "  \"cold_p50_ms\": " << cold_p50_ms << ",\n";
  json << "  \"hit_p50_ms\": " << hit_p50_ms << ",\n";
  json << "  \"speedup_p50\": " << speedup << ",\n";
  json << "  \"wrong_results\": " << wrong_results.load() << ",\n";
  json << "  \"failed_requests\": " << failed.load() << ",\n";
  json << "  \"typed_rejections\": " << typed_rejections.load() << ",\n";
  json << "  \"rejected_counter\": " << rejected_metric << ",\n";
  json << "  \"worst_rejection_ms\": " << worst_rejection_ms << ",\n";
  json << "  \"pass\": " << (ok ? "true" : "false") << "\n}\n";
  json.close();
  std::printf("wrote BENCH_serving.json — %s\n", ok ? "PASS" : "FAIL");
  return ok ? 0 : 1;
}
