// Microbenchmarks (google-benchmark) of the primitives behind every
// experiment: DOM parse, Mison structural-index extraction (stable and
// variable schemas), JSONPath evaluation, CORC scan/skip throughput.
//
// These are the calibration numbers behind the Fig. 14 cost model and the
// sanity floor under Figs. 3/12/15.

#include <benchmark/benchmark.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "json/dom_parser.h"
#include "json/json_path.h"
#include "json/mison_parser.h"
#include "storage/corc_reader.h"
#include "storage/corc_writer.h"
#include "storage/file_system.h"
#include "workload/data_generator.h"

namespace {

std::vector<std::string> MakeRecords(int n, int properties, int avg_bytes,
                                     double variability) {
  maxson::workload::JsonTableSpec spec;
  spec.table = "bench";
  spec.num_properties = properties;
  spec.avg_json_bytes = avg_bytes;
  spec.schema_variability = variability;
  std::vector<std::string> records;
  records.reserve(n);
  for (int i = 0; i < n; ++i) {
    records.push_back(
        maxson::workload::GenerateJsonRecord(spec, static_cast<uint64_t>(i)));
  }
  return records;
}

void BM_DomParse(benchmark::State& state) {
  const auto records =
      MakeRecords(256, 20, static_cast<int>(state.range(0)), 0.0);
  size_t i = 0;
  uint64_t bytes = 0;
  for (auto _ : state) {
    auto doc = maxson::json::ParseJson(records[i % records.size()]);
    benchmark::DoNotOptimize(doc);
    bytes += records[i % records.size()].size();
    ++i;
  }
  state.SetBytesProcessed(static_cast<int64_t>(bytes));
}
BENCHMARK(BM_DomParse)->Arg(400)->Arg(2000)->Arg(8000);

void BM_MisonExtract(benchmark::State& state) {
  const bool variable = state.range(1) != 0;
  const auto records = MakeRecords(256, 20, static_cast<int>(state.range(0)),
                                   variable ? 0.8 : 0.0);
  auto path = maxson::json::JsonPath::Parse("$.f2");
  maxson::json::MisonParser parser;
  size_t i = 0;
  uint64_t bytes = 0;
  for (auto _ : state) {
    auto value = parser.Extract(records[i % records.size()], *path);
    benchmark::DoNotOptimize(value);
    bytes += records[i % records.size()].size();
    ++i;
  }
  state.SetBytesProcessed(static_cast<int64_t>(bytes));
  state.SetLabel(variable ? "variable-schema" : "stable-schema");
}
BENCHMARK(BM_MisonExtract)->Args({2000, 0})->Args({2000, 1})->Args({8000, 0});

void BM_GetJsonObject(benchmark::State& state) {
  const auto records = MakeRecords(256, 20, 800, 0.0);
  auto path = maxson::json::JsonPath::Parse("$.f1");
  size_t i = 0;
  for (auto _ : state) {
    auto value =
        maxson::json::GetJsonObject(records[i % records.size()], *path);
    benchmark::DoNotOptimize(value);
    ++i;
  }
}
BENCHMARK(BM_GetJsonObject);

void BM_JsonPathParse(benchmark::State& state) {
  for (auto _ : state) {
    auto path = maxson::json::JsonPath::Parse("$.store.book[3].title");
    benchmark::DoNotOptimize(path);
  }
}
BENCHMARK(BM_JsonPathParse);

class CorcFixture : public benchmark::Fixture {
 public:
  void SetUp(const benchmark::State&) override {
    if (!path_.empty()) return;
    path_ = "/tmp/maxson_micro_corc_" + std::to_string(::getpid()) + ".corc";
    maxson::storage::Schema schema;
    schema.AddField("id", maxson::storage::TypeKind::kInt64);
    schema.AddField("payload", maxson::storage::TypeKind::kString);
    maxson::storage::CorcWriterOptions options;
    options.rows_per_group = 1000;
    maxson::storage::CorcWriter writer(path_, schema, options);
    (void)writer.Open();
    const auto records = MakeRecords(200, 17, 600, 0.0);
    for (int i = 0; i < 20000; ++i) {
      (void)writer.AppendRow(
          {maxson::storage::Value::Int64(i),
           maxson::storage::Value::String(records[i % records.size()])});
    }
    // A fixture built on a partial file would benchmark garbage; fail loud.
    if (!writer.Close().ok()) std::abort();
  }

 protected:
  static std::string path_;
};
std::string CorcFixture::path_;

BENCHMARK_F(CorcFixture, FullScan)(benchmark::State& state) {
  for (auto _ : state) {
    maxson::storage::CorcReader reader(path_);
    (void)reader.Open();
    maxson::storage::ReadStats stats;
    auto batch = reader.ReadStripe(0, {0, 1}, std::nullopt, &stats);
    benchmark::DoNotOptimize(batch);
    state.SetBytesProcessed(state.bytes_processed() +
                            static_cast<int64_t>(stats.bytes_read));
  }
}

BENCHMARK_F(CorcFixture, SargSkipScan)(benchmark::State& state) {
  for (auto _ : state) {
    maxson::storage::CorcReader reader(path_);
    (void)reader.Open();
    maxson::storage::SearchArgument sarg;
    sarg.AddLeaf(maxson::storage::SargLeaf{
        "id", maxson::storage::SargOp::kGt,
        maxson::storage::Value::Int64(18000)});
    auto include = reader.ComputeRowGroupInclusion(0, sarg);
    maxson::storage::ReadStats stats;
    auto batch = reader.ReadStripe(0, {0, 1}, *include, &stats);
    benchmark::DoNotOptimize(batch);
    state.SetBytesProcessed(state.bytes_processed() +
                            static_cast<int64_t>(stats.bytes_read));
  }
}

}  // namespace

BENCHMARK_MAIN();
