// Table IV: LSTM+CRF vs Uni-LSTM across date-window sizes (one week, two
// weeks, one month).
//
// Paper shape: LSTM+CRF's F1 is higher than Uni-LSTM's at every window
// size, and the one-week window maximizes F1 for both models.

#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "common/random.h"
#include "core/collector.h"
#include "core/predictor.h"
#include "ml/dataset.h"
#include "workload/trace_generator.h"

using maxson::core::JsonPathCollector;
using maxson::core::JsonPathPredictor;
using maxson::core::PredictorConfig;
using maxson::core::PredictorModel;

int main() {
  maxson::bench::PrintHeader(
      "Table IV — LSTM+CRF vs LSTM across date-window sizes",
      "LSTM+CRF F1 >= LSTM F1 at 1 week / 2 weeks / 1 month; "
      "1-week window maximizes F1");

  maxson::workload::TraceGeneratorConfig trace_config;
  trace_config.num_days = 70;  // enough history for the 30-day window
  const auto trace = maxson::workload::GenerateTrace(trace_config);
  JsonPathCollector collector;
  collector.RecordTrace(trace);

  struct WindowSpec {
    const char* label;
    int days;
  };
  const WindowSpec windows[] = {{"1 week", 7}, {"2 weeks", 14},
                                {"1 month", 30}};

  std::printf("%-10s %-10s %10s %10s %10s\n", "Window", "Model", "Precision",
              "Recall", "F1-Score");
  double f1_by_window[3][2] = {};
  int w = 0;
  for (const WindowSpec& window : windows) {
    int m = 0;
    for (PredictorModel model :
         {PredictorModel::kLstmCrf, PredictorModel::kLstm}) {
      PredictorConfig config;
      config.model = model;
      config.window_days = window.days;
      config.epochs = 8;
      JsonPathPredictor predictor(config);
      std::vector<maxson::ml::Sample> samples =
          predictor.BuildDataset(collector, 32, 62);
      maxson::Rng rng(23);
      auto split = maxson::ml::SplitDataset(std::move(samples), 0.7, 0.2, &rng);
      if (auto st = predictor.Train(split.train); !st.ok()) {
        std::fprintf(stderr, "training failed: %s\n", st.ToString().c_str());
        return 1;
      }
      const auto metrics = predictor.Evaluate(split.test);
      std::printf("%-10s %-10s %10.3f %10.3f %10.3f\n", window.label,
                  model == PredictorModel::kLstmCrf ? "LSTM+CRF" : "LSTM",
                  metrics.Precision(), metrics.Recall(), metrics.F1());
      f1_by_window[w][m] = metrics.F1();
      ++m;
    }
    ++w;
  }
  int crf_wins = 0;
  for (int i = 0; i < 3; ++i) {
    if (f1_by_window[i][0] >= f1_by_window[i][1] - 1e-9) ++crf_wins;
  }
  std::printf("\nLSTM+CRF >= LSTM at %d/3 window sizes (paper: 3/3)\n",
              crf_wins);
  return 0;
}
