// Throughput of the SIMD kernel layer (src/simd/) at every ISA level the
// host supports, on megabyte-scale buffers shaped like the hot paths'
// inputs: JSON-ish text for classification and scans, warehouse-style
// records for substring search, 0/1 null vectors and numeric columns for
// the CORC codec kernels. Each kernel's result is cross-checked against
// the scalar level, so the bench doubles as a large-buffer differential
// test; divergence fails the run.
//
// Writes BENCH_kernels.json with per-kernel GB/s and speedup-vs-scalar.

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "common/random.h"
#include "common/time_util.h"
#include "simd/isa.h"
#include "simd/kernels.h"

using maxson::Rng;
using maxson::Stopwatch;
namespace simd = maxson::simd;

namespace {

constexpr size_t kBufferBytes = 4 << 20;  // 4 MiB per kernel input
constexpr int kReps = 5;                  // best-of timing

struct Measurement {
  std::string isa;
  double gbps = 0.0;
};

struct KernelResult {
  std::string name;
  std::vector<Measurement> levels;

  double GbpsAt(const std::string& isa) const {
    for (const Measurement& m : levels) {
      if (m.isa == isa) return m.gbps;
    }
    return 0.0;
  }
};

/// Times `fn` (which must consume `bytes` input bytes per call) at the
/// current dispatch level, best-of-kReps, and returns GB/s.
template <typename Fn>
double TimeGbps(size_t bytes, Fn&& fn) {
  fn();  // warm-up (also populates the checksum on first call)
  double best = 1e30;
  for (int rep = 0; rep < kReps; ++rep) {
    Stopwatch timer;
    fn();
    const double elapsed = timer.ElapsedSeconds();
    if (elapsed < best) best = elapsed;
  }
  return static_cast<double>(bytes) / best / 1e9;
}

std::string MakeJsonish(size_t bytes, Rng* rng) {
  static const char kAlphabet[] =
      "abcdefghijklmnop0123456789 \t\"\\{}:,.[]-";
  std::string s;
  s.reserve(bytes);
  for (size_t i = 0; i < bytes; ++i) {
    s.push_back(kAlphabet[rng->NextBounded(sizeof(kAlphabet) - 1)]);
  }
  return s;
}

}  // namespace

int main() {
  maxson::bench::PrintHeader(
      "kernel_bench: SIMD kernel throughput by ISA level",
      "structural indexing and raw filtering are the parse-side costs "
      "Maxson's cache avoids; the kernels accelerate what remains");

  std::vector<simd::Isa> levels = {simd::Isa::kScalar};
  if (simd::BestSupportedIsa() >= simd::Isa::kSse2) {
    levels.push_back(simd::Isa::kSse2);
  }
  if (simd::BestSupportedIsa() >= simd::Isa::kAvx2) {
    levels.push_back(simd::Isa::kAvx2);
  }

  Rng rng(417);
  const std::string text = MakeJsonish(kBufferBytes, &rng);
  const size_t words = simd::BitmapWords(text.size());

  // Substring search: warehouse-like records around 300 bytes with the
  // needle present in ~10% (the raw filter's selective regime).
  const std::string needle = "category_7";
  std::vector<std::string> records;
  size_t record_bytes = 0;
  while (record_bytes < kBufferBytes) {
    std::string rec = MakeJsonish(280 + rng.NextBounded(40), &rng);
    if (rng.NextBool(0.1)) {
      const size_t at = rng.NextBounded(rec.size() - needle.size());
      rec.replace(at, needle.size(), needle);
    }
    record_bytes += rec.size();
    records.push_back(std::move(rec));
  }

  std::vector<uint8_t> nulls(kBufferBytes);
  for (size_t i = 0; i < nulls.size(); ++i) {
    nulls[i] = rng.NextBool(0.2) ? 1 : 0;
  }
  std::vector<int64_t> ints(kBufferBytes / 8);
  std::vector<double> doubles(kBufferBytes / 8);
  for (size_t i = 0; i < ints.size(); ++i) {
    ints[i] = static_cast<int64_t>(rng.Next());
    doubles[i] = rng.NextGaussian(0.0, 1e9);
  }

  std::vector<KernelResult> results;
  bool identical = true;

  // Per-kernel scalar-reference checksums, captured at the scalar level and
  // compared at every higher level.
  std::vector<uint64_t> ref_classify, ref_scan, ref_find, ref_null, ref_minmax;

  std::printf("%-18s %-8s %10s %10s\n", "kernel", "isa", "GB/s", "vs scalar");
  for (const simd::Isa level : levels) {
    if (simd::ForceIsa(level) != level) continue;
    const std::string isa = simd::IsaName(level);

    // classify_json: the structural-index bitmap construction.
    std::vector<uint64_t> q(words), b(words), st(words);
    const double classify_gbps = TimeGbps(text.size(), [&] {
      simd::ClassifyJson(text.data(), text.size(), q.data(), b.data(),
                         st.data());
    });
    uint64_t sum = 0;
    for (size_t w = 0; w < words; ++w) sum += q[w] ^ (b[w] * 3) ^ (st[w] * 7);
    std::vector<uint64_t> classify_check = {sum};

    // scan kernels: whitespace skipping + string-special search walk the
    // buffer in alternating strides like the DOM parser does.
    uint64_t scan_acc = 0;
    const double scan_gbps = TimeGbps(text.size(), [&] {
      size_t pos = 0;
      scan_acc = 0;
      while (pos < text.size()) {
        pos = simd::SkipWhitespace(text.data(), text.size(), pos);
        pos = simd::FindStringSpecial(text.data(), text.size(), pos);
        if (pos < text.size()) ++pos;
        scan_acc += pos;
      }
    });
    std::vector<uint64_t> scan_check = {scan_acc};

    // substring find over the record set (the raw filter's inner loop).
    uint64_t find_acc = 0;
    const double find_gbps = TimeGbps(record_bytes, [&] {
      find_acc = 0;
      for (const std::string& rec : records) {
        find_acc += simd::FindSubstring(rec.data(), rec.size(), needle.data(),
                                        needle.size()) != simd::kNpos;
      }
    });
    std::vector<uint64_t> find_check = {find_acc};

    // null-bitmap expansion + count (CORC decode/encode side).
    std::vector<uint64_t> bitmap(simd::BitmapWords(nulls.size()));
    uint64_t null_count = 0;
    const double null_gbps = TimeGbps(nulls.size(), [&] {
      null_count = simd::NullBytesToBitmap(nulls.data(), nulls.size(),
                                           bitmap.data());
      null_count += simd::CountNonZeroBytes(nulls.data(), nulls.size());
    });
    uint64_t bitmap_sum = null_count;
    for (uint64_t w : bitmap) bitmap_sum += w;
    std::vector<uint64_t> null_check = {bitmap_sum};

    // min/max over numeric columns (row-group SARG statistics).
    int64_t imin = 0, imax = 0;
    double dmin = 0, dmax = 0;
    const double minmax_gbps = TimeGbps(
        ints.size() * 8 + doubles.size() * 8, [&] {
          simd::MinMaxInt64(ints.data(), ints.size(), &imin, &imax);
          simd::MinMaxDouble(doubles.data(), doubles.size(), &dmin, &dmax);
        });
    uint64_t dmin_bits, dmax_bits;
    std::memcpy(&dmin_bits, &dmin, 8);
    std::memcpy(&dmax_bits, &dmax, 8);
    std::vector<uint64_t> minmax_check = {static_cast<uint64_t>(imin),
                                          static_cast<uint64_t>(imax),
                                          dmin_bits, dmax_bits};

    const struct {
      const char* name;
      double gbps;
      std::vector<uint64_t>* check;
      std::vector<uint64_t>* ref;
    } kernels[] = {
        {"classify_json", classify_gbps, &classify_check, &ref_classify},
        {"scan", scan_gbps, &scan_check, &ref_scan},
        {"find_substring", find_gbps, &find_check, &ref_find},
        {"null_bitmap", null_gbps, &null_check, &ref_null},
        {"minmax", minmax_gbps, &minmax_check, &ref_minmax},
    };
    for (const auto& k : kernels) {
      if (level == simd::Isa::kScalar) {
        *k.ref = *k.check;
        results.push_back(KernelResult{k.name, {}});
      } else if (*k.check != *k.ref) {
        identical = false;
        std::fprintf(stderr, "%s: result diverged at isa=%s!\n", k.name,
                     isa.c_str());
      }
      KernelResult* res = nullptr;
      for (KernelResult& r : results) {
        if (r.name == k.name) res = &r;
      }
      res->levels.push_back(Measurement{isa, k.gbps});
      const double scalar = res->GbpsAt("scalar");
      std::printf("%-18s %-8s %10.2f %9.2fx\n", k.name, isa.c_str(), k.gbps,
                  scalar > 0 ? k.gbps / scalar : 1.0);
    }
  }
  simd::ResetIsa();

  std::printf("\nresults identical across ISA levels: %s\n",
              identical ? "yes" : "NO");

  std::ofstream json("BENCH_kernels.json", std::ios::trunc);
  json << "{\n  \"bench\": \"kernel_bench\",\n";
  json << "  \"best_isa\": \""
       << simd::IsaName(simd::BestSupportedIsa()) << "\",\n";
  json << "  \"results_identical\": " << (identical ? "true" : "false")
       << ",\n  \"kernels\": [\n";
  for (size_t i = 0; i < results.size(); ++i) {
    const KernelResult& r = results[i];
    const double scalar = r.GbpsAt("scalar");
    json << "    {\"name\": \"" << r.name << "\", \"levels\": [";
    for (size_t l = 0; l < r.levels.size(); ++l) {
      json << (l ? ", " : "") << "{\"isa\": \"" << r.levels[l].isa
           << "\", \"gbps\": " << r.levels[l].gbps
           << ", \"speedup_vs_scalar\": "
           << (scalar > 0 ? r.levels[l].gbps / scalar : 0) << "}";
    }
    json << "]}" << (i + 1 < results.size() ? "," : "") << "\n";
  }
  json << "  ]\n}\n";
  json.close();
  std::printf("wrote BENCH_kernels.json\n");
  return identical ? 0 : 1;
}
