// Fig. 12: runtime breakdown (Read / Parse / Compute) and input size for
// Q2 and Q9, Spark vs Maxson.
//
// Paper shape: Maxson eliminates the Parse step entirely by reading cached
// values, and because Q2/Q9 filter on JSON properties, pushing those
// predicates down into the cache table shrinks the input size well below
// the Spark baseline's.

#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "catalog/catalog.h"
#include "common/string_util.h"
#include "core/maxson.h"
#include "workload/query_templates.h"

using maxson::core::MaxsonConfig;
using maxson::core::MaxsonSession;
using maxson::workload::BenchmarkQuery;

int main() {
  maxson::bench::PrintHeader(
      "Fig. 12 — Read/Parse/Compute breakdown and input size for Q2 and Q9",
      "Maxson removes the parse phase; JSON-predicate pushdown onto the "
      "cache table shrinks the input size");

  maxson::bench::BenchWorkspace workspace("fig12");
  maxson::catalog::Catalog catalog;
  maxson::workload::BenchmarkSuiteOptions suite;
  suite.bytes_per_table = 6ull << 20;
  suite.max_rows = 30000;
  auto all_queries = maxson::workload::MakeTableIIQueries(suite);

  // Only Q2 and Q9 are needed.
  std::vector<BenchmarkQuery> queries;
  for (auto& q : all_queries) {
    if (q.name == "Q2" || q.name == "Q9") queries.push_back(std::move(q));
  }
  if (auto st = maxson::workload::GenerateBenchmarkTables(
          queries, workspace.dir() + "/warehouse", suite, &catalog);
      !st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }

  MaxsonConfig config;
  config.cache_root = workspace.dir() + "/cache";
  config.engine.default_database = "bench";
  config.predictor.epochs = 6;
  MaxsonSession session(&catalog, config);
  for (int day = 0; day < 14; ++day) {
    for (const BenchmarkQuery& q : queries) {
      for (int rep = 0; rep < 2; ++rep) {
        maxson::workload::QueryRecord record;
        record.date = day;
        record.paths = q.paths;
        session.RecordQuery(record);
      }
    }
  }
  if (auto st = session.TrainPredictor(8, 13); !st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }
  auto midnight = session.RunMidnightCycle(14);
  if (!midnight.ok()) {
    std::fprintf(stderr, "%s\n", midnight.status().ToString().c_str());
    return 1;
  }

  std::printf("%-6s %-8s %10s %10s %11s %14s %12s\n", "query", "system",
              "read(ms)", "parse(ms)", "compute(ms)", "input size",
              "rows read");
  for (const BenchmarkQuery& q : queries) {
    auto spark = session.ExecuteWithoutCache(q.sql);
    auto maxson_run = session.Execute(q.sql);
    if (!spark.ok() || !maxson_run.ok()) {
      std::fprintf(stderr, "%s failed\n", q.name.c_str());
      return 1;
    }
    const auto& sm = spark->metrics;
    const auto& mm = maxson_run->metrics;
    std::printf("%-6s %-8s %10.1f %10.1f %11.1f %14s %12llu\n",
                q.name.c_str(), "Spark", sm.read_seconds * 1e3,
                sm.parse_seconds * 1e3, sm.compute_seconds * 1e3,
                maxson::FormatBytes(sm.read.bytes_read).c_str(),
                static_cast<unsigned long long>(sm.read.rows_read));
    std::printf("%-6s %-8s %10.1f %10.1f %11.1f %14s %12llu\n",
                q.name.c_str(), "Maxson", mm.read_seconds * 1e3,
                mm.parse_seconds * 1e3, mm.compute_seconds * 1e3,
                maxson::FormatBytes(mm.read.bytes_read).c_str(),
                static_cast<unsigned long long>(mm.read.rows_read));
    std::printf("%-6s pushdown: shared row-group skips = %llu; "
                "input shrink = %.1fx; parse eliminated = %s; results match "
                "= %s\n\n",
                q.name.c_str(),
                static_cast<unsigned long long>(mm.shared_skips),
                mm.read.bytes_read == 0
                    ? 0.0
                    : static_cast<double>(sm.read.bytes_read) /
                          static_cast<double>(mm.read.bytes_read),
                mm.parse.records_parsed == 0 ? "YES" : "NO",
                spark->batch.num_rows() == maxson_run->batch.num_rows()
                    ? "YES"
                    : "NO");
  }
  return 0;
}
