// Fig. 11 + Table V: query acceleration under different cache limits, with
// score-based vs random MPJP selection, plus score-component ablations.
//
// The paper used 100/200/300/400 GB limits on a 22-node cluster, with
// 400 GB large enough to hold every MPJP's values. We scale budgets to the
// same fractions of the total MPJP footprint (25/50/75/100%) over the
// Table II workload. Paper shape: larger cache -> shorter total time;
// scoring beats random at every sub-maximal budget; at the full budget the
// two coincide; the scoring function clusters whole queries (Table V).

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "catalog/catalog.h"
#include "core/maxson.h"
#include "core/scoring.h"
#include "engine/fingerprint.h"
#include "storage/corc_format.h"
#include "storage/file_system.h"
#include "workload/query_templates.h"

using maxson::core::MaxsonConfig;
using maxson::core::MaxsonSession;
using maxson::core::ScoredMpjp;
using maxson::workload::BenchmarkQuery;

namespace {

/// Runs all ten queries through the session (with the current cache state)
/// and returns (total seconds, per-query seconds).
double RunSuite(MaxsonSession* session,
                const std::vector<BenchmarkQuery>& queries, bool use_cache,
                std::vector<double>* per_query) {
  double total = 0.0;
  if (per_query != nullptr) per_query->clear();
  for (const BenchmarkQuery& q : queries) {
    auto result = use_cache ? session->Execute(q.sql)
                            : session->ExecuteWithoutCache(q.sql);
    if (!result.ok()) {
      std::fprintf(stderr, "%s failed: %s\n", q.name.c_str(),
                   result.status().ToString().c_str());
      std::exit(1);
    }
    total += result->metrics.TotalSeconds();
    if (per_query != nullptr) {
      per_query->push_back(result->metrics.TotalSeconds());
    }
  }
  return total;
}

/// Per-query count of cached JSONPaths (Table V's rows).
std::vector<int> CachedPerQuery(const std::vector<BenchmarkQuery>& queries,
                                const std::vector<ScoredMpjp>& selected) {
  std::set<std::string> cached;
  for (const ScoredMpjp& s : selected) {
    cached.insert(s.candidate.location.Key());
  }
  std::vector<int> out;
  for (const BenchmarkQuery& q : queries) {
    int n = 0;
    for (const auto& path : q.paths) {
      if (cached.count(path.Key()) != 0) ++n;
    }
    out.push_back(n);
  }
  return out;
}

}  // namespace

int main() {
  maxson::bench::PrintHeader(
      "Fig. 11 + Table V — total execution time vs cache limit "
      "(scoring vs random vs none) with Eq. 3 ablations",
      "scoring beats random at every sub-max budget; equal when everything "
      "fits; speedups 1.5-6.5x vs no cache; scoring clusters whole queries");

  maxson::bench::BenchWorkspace workspace("fig11");
  maxson::catalog::Catalog catalog;

  maxson::workload::BenchmarkSuiteOptions suite;
  suite.bytes_per_table = 4ull << 20;
  suite.max_rows = 20000;
  auto queries = maxson::workload::MakeTableIIQueries(suite);
  std::printf("generating the 10 Table II tables (~%.0f MiB JSON total)...\n",
              static_cast<double>(suite.bytes_per_table) / (1 << 20) * 10);
  if (auto st = maxson::workload::GenerateBenchmarkTables(
          queries, workspace.dir() + "/warehouse", suite, &catalog);
      !st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }

  MaxsonConfig config;
  config.cache_root = workspace.dir() + "/cache";
  config.engine.default_database = "bench";
  config.predictor.epochs = 6;
  MaxsonSession session(&catalog, config);

  // History: each Table II query runs twice daily for two weeks (every
  // path is a legitimate MPJP).
  for (int day = 0; day < 14; ++day) {
    for (const BenchmarkQuery& q : queries) {
      for (int rep = 0; rep < 2; ++rep) {
        maxson::workload::QueryRecord record;
        record.date = day;
        record.paths = q.paths;
        session.RecordQuery(record);
      }
    }
  }
  if (auto st = session.TrainPredictor(8, 13); !st.ok()) {
    std::fprintf(stderr, "training failed: %s\n", st.ToString().c_str());
    return 1;
  }

  // Predict + score once; selection then varies by budget and strategy.
  const auto predicted = session.PredictMpjps(14);
  auto scored_or = session.ScoreCandidates(predicted, 14);
  if (!scored_or.ok()) {
    std::fprintf(stderr, "%s\n", scored_or.status().ToString().c_str());
    return 1;
  }
  const std::vector<ScoredMpjp> scored = *scored_or;
  uint64_t total_mpjp_bytes = 0;
  for (const ScoredMpjp& s : scored) {
    total_mpjp_bytes += s.candidate.estimated_cache_bytes;
  }
  std::printf("predicted %zu MPJPs, total footprint %.1f MiB\n\n",
              scored.size(),
              static_cast<double>(total_mpjp_bytes) / (1 << 20));

  const double no_cache_total = RunSuite(&session, queries, false, nullptr);
  std::printf("no cache: total %.2f s\n\n", no_cache_total);

  struct Row {
    std::string label;
    double total;
    std::vector<int> per_query;
  };
  std::vector<Row> table_v;

  std::printf("%-22s %12s %12s %9s\n", "configuration", "budget(MiB)",
              "total (s)", "speedup");
  auto run_config = [&](const std::string& label, double fraction,
                        std::vector<ScoredMpjp> ordered) {
    const uint64_t budget = static_cast<uint64_t>(
        static_cast<double>(total_mpjp_bytes) * fraction + 0.5);
    auto selected = maxson::core::SelectWithinBudget(std::move(ordered), budget);
    auto stats = session.CacheSelected(selected, 14);
    if (!stats.ok()) {
      std::fprintf(stderr, "caching failed: %s\n",
                   stats.status().ToString().c_str());
      std::exit(1);
    }
    const double total = RunSuite(&session, queries, true, nullptr);
    // Caching overhead amortizes over every query of the day that shares
    // the cache; the paper reports ~1.7% of execution time per query. Here
    // each path is hit by 2 scheduled runs/day of its query.
    const double overhead_share =
        stats->total_seconds / std::max(1e-9, 2 * 10 * no_cache_total);
    std::printf("%-22s %12.1f %12.2f %8.1fx   (caching %.2fs, %4.1f%% of "
                "daily work)\n",
                label.c_str(), static_cast<double>(budget) / (1 << 20),
                total, no_cache_total / total, stats->total_seconds,
                overhead_share * 100);
    table_v.push_back(Row{label, total, CachedPerQuery(queries, selected)});
    return total;
  };

  // Sweep: scoring vs random at each budget fraction (100GB:400GB = 1:4).
  std::map<double, double> scoring_total;
  std::map<double, double> random_total;
  for (double fraction : {0.25, 0.5, 0.75, 1.0}) {
    char label[64];
    std::snprintf(label, sizeof(label), "scoring @ %3.0f%%", fraction * 100);
    scoring_total[fraction] = run_config(label, fraction, scored);
    std::snprintf(label, sizeof(label), "random  @ %3.0f%%", fraction * 100);
    random_total[fraction] = run_config(
        label, fraction,
        maxson::core::SelectRandomWithinBudget(scored, ~uint64_t{0}, 7));
  }

  // Ablations of Eq. 3 at the half budget: rank by A only and by O only.
  auto by_component = [&](auto key) {
    std::vector<ScoredMpjp> v = scored;
    std::stable_sort(v.begin(), v.end(), [&](const ScoredMpjp& a,
                                             const ScoredMpjp& b) {
      return key(a) > key(b);
    });
    return v;
  };
  run_config("A-only  @  50%", 0.5, by_component([](const ScoredMpjp& s) {
               return s.acceleration_per_byte;
             }));
  run_config("O-only  @  50%", 0.5, by_component([](const ScoredMpjp& s) {
               return static_cast<double>(s.occurrences);
             }));

  // Table V.
  std::printf("\nTable V — cached JSONPaths per query "
              "(query: total paths | cached under each configuration)\n");
  std::printf("%-22s", "configuration");
  for (const BenchmarkQuery& q : queries) {
    std::printf(" %4s", q.name.c_str());
  }
  std::printf("\n%-22s", "total JSONPaths");
  for (const BenchmarkQuery& q : queries) {
    std::printf(" %4zu", q.paths.size());
  }
  std::printf("\n");
  for (const Row& row : table_v) {
    std::printf("%-22s", row.label.c_str());
    for (int n : row.per_query) std::printf(" %4d", n);
    std::printf("\n");
  }

  // CORC encoding ablation: cache the full selection twice — chunk
  // encodings off (v2 files, the pre-encoding layout) and on (v3,
  // adaptive dict/RLE/block per chunk). The same JSONPaths are covered
  // both times, so coverage per MiB of cache improves exactly when the
  // encoded cache is strictly smaller. Results must be byte-identical
  // (cell-exact fingerprints) between the two runs.
  std::printf("\nCORC encoding ablation — full selection, encodings off (v2) "
              "vs on (v3)\n");
  const auto full_selected =
      maxson::core::SelectWithinBudget(scored, ~uint64_t{0});
  const size_t covered_paths = full_selected.size();
  struct EncodingRun {
    uint64_t cache_bytes = 0;
    uint64_t raw_bytes = 0;
    uint64_t encoded_bytes = 0;
    uint64_t chunks[maxson::storage::kNumChunkEncodings] = {};
    std::vector<uint64_t> fingerprints;
  };
  auto run_encoding = [&](bool enabled) {
    maxson::core::SessionUpdate update;
    update.corc_encoding = enabled;
    if (auto st = session.UpdateConfig(update); !st.ok()) {
      std::fprintf(stderr, "%s\n", st.ToString().c_str());
      std::exit(1);
    }
    auto stats = session.CacheSelected(full_selected, 14);
    if (!stats.ok()) {
      std::fprintf(stderr, "caching failed: %s\n",
                   stats.status().ToString().c_str());
      std::exit(1);
    }
    EncodingRun run;
    run.raw_bytes = stats->corc_raw_bytes;
    run.encoded_bytes = stats->corc_encoded_bytes;
    for (int e = 0; e < maxson::storage::kNumChunkEncodings; ++e) {
      run.chunks[e] = stats->corc_chunks[e];
    }
    auto size_or =
        maxson::storage::FileSystem::DirectorySize(config.cache_root);
    if (!size_or.ok()) {
      std::fprintf(stderr, "%s\n", size_or.status().ToString().c_str());
      std::exit(1);
    }
    run.cache_bytes = *size_or;
    for (const BenchmarkQuery& q : queries) {
      auto result = session.Execute(q.sql);
      if (!result.ok()) {
        std::fprintf(stderr, "%s failed: %s\n", q.name.c_str(),
                     result.status().ToString().c_str());
        std::exit(1);
      }
      run.fingerprints.push_back(
          maxson::engine::FingerprintHash(result->batch));
    }
    return run;
  };
  const EncodingRun enc_off = run_encoding(false);
  const EncodingRun enc_on = run_encoding(true);

  auto per_mib = [covered_paths](uint64_t bytes) {
    return static_cast<double>(covered_paths) /
           (static_cast<double>(bytes) / (1 << 20));
  };
  std::printf("%-14s %14s %18s\n", "encodings", "cache (MiB)",
              "paths per MiB");
  std::printf("%-14s %14.2f %18.2f\n", "off (v2)",
              static_cast<double>(enc_off.cache_bytes) / (1 << 20),
              per_mib(enc_off.cache_bytes));
  std::printf("%-14s %14.2f %18.2f\n", "on  (v3)",
              static_cast<double>(enc_on.cache_bytes) / (1 << 20),
              per_mib(enc_on.cache_bytes));
  std::printf("v3 chunk mix:");
  for (int e = 0; e < maxson::storage::kNumChunkEncodings; ++e) {
    std::printf(" %s=%llu",
                maxson::storage::ChunkEncodingName(
                    static_cast<maxson::storage::ChunkEncoding>(e)),
                static_cast<unsigned long long>(enc_on.chunks[e]));
  }
  std::printf("  (raw %.2f MiB -> encoded %.2f MiB)\n",
              static_cast<double>(enc_on.raw_bytes) / (1 << 20),
              static_cast<double>(enc_on.encoded_bytes) / (1 << 20));

  const bool results_identical = enc_off.fingerprints == enc_on.fingerprints;
  const bool coverage_improved = enc_on.cache_bytes < enc_off.cache_bytes;
  std::printf("results byte-identical on vs off: %s\n",
              results_identical ? "YES" : "NO");
  std::printf("coverage per MiB strictly improves with encodings: %s\n",
              coverage_improved ? "YES" : "NO");

  std::ofstream json("BENCH_cache.json", std::ios::trunc);
  json << "{\n  \"bench\": \"fig11_cache_sweep\",\n";
  json << "  \"no_cache_total_seconds\": " << no_cache_total << ",\n";
  json << "  \"scoring_total_seconds\": {";
  bool first = true;
  for (const auto& [fraction, total] : scoring_total) {
    json << (first ? "" : ", ") << '"' << fraction << "\": " << total;
    first = false;
  }
  json << "},\n  \"random_total_seconds\": {";
  first = true;
  for (const auto& [fraction, total] : random_total) {
    json << (first ? "" : ", ") << '"' << fraction << "\": " << total;
    first = false;
  }
  json << "},\n  \"encoding_ablation\": {\n";
  json << "    \"covered_paths\": " << covered_paths << ",\n";
  json << "    \"v2_cache_bytes\": " << enc_off.cache_bytes << ",\n";
  json << "    \"v3_cache_bytes\": " << enc_on.cache_bytes << ",\n";
  json << "    \"v2_paths_per_mib\": " << per_mib(enc_off.cache_bytes)
       << ",\n";
  json << "    \"v3_paths_per_mib\": " << per_mib(enc_on.cache_bytes)
       << ",\n";
  json << "    \"v3_raw_bytes\": " << enc_on.raw_bytes << ",\n";
  json << "    \"v3_encoded_bytes\": " << enc_on.encoded_bytes << ",\n";
  json << "    \"v3_chunks\": {";
  for (int e = 0; e < maxson::storage::kNumChunkEncodings; ++e) {
    json << (e == 0 ? "" : ", ") << '"'
         << maxson::storage::ChunkEncodingName(
                static_cast<maxson::storage::ChunkEncoding>(e))
         << "\": " << enc_on.chunks[e];
  }
  json << "},\n";
  json << "    \"results_identical\": "
       << (results_identical ? "true" : "false") << ",\n";
  json << "    \"coverage_per_mib_improved\": "
       << (coverage_improved ? "true" : "false") << "\n  }\n}\n";
  json.close();
  std::printf("wrote BENCH_cache.json\n");

  // Shape checks.
  bool scoring_wins = true;
  for (double f : {0.25, 0.5, 0.75}) {
    if (scoring_total[f] > random_total[f] * 1.05) scoring_wins = false;
  }
  std::printf("\nscoring <= random at sub-max budgets: %s (paper: yes)\n",
              scoring_wins ? "YES" : "NO");
  std::printf("scoring ~ random at full budget: %s (paper: yes)\n",
              std::abs(scoring_total[1.0] - random_total[1.0]) <
                      0.25 * std::max(scoring_total[1.0], random_total[1.0])
                  ? "YES"
                  : "NO");
  std::printf("larger budget -> faster (scoring): %s\n",
              (scoring_total[0.25] >= scoring_total[1.0]) ? "YES" : "NO");
  if (!results_identical || !coverage_improved) {
    std::fprintf(stderr, "encoding ablation FAILED acceptance checks\n");
    return 1;
  }
  return 0;
}
