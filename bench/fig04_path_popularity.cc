// Fig. 4: number of queries that contain each JSONPath.
//
// Regenerates the power-law popularity series over the synthetic trace and
// checks the paper's summary statistics: 89% of the parsing traffic falls
// on 27% of the JSONPaths, and the average JSONPath is requested by ~14
// queries. (Our scaled-down trace reproduces the skew; the mean is higher
// because the path universe is proportionally smaller — see EXPERIMENTS.md.)

#include <cstdio>

#include "bench/bench_util.h"
#include "workload/trace_generator.h"
#include "workload/workload_stats.h"

int main() {
  maxson::bench::PrintHeader(
      "Fig. 4 — number of queries containing each JSONPath",
      "power law: 89% of parsing traffic on 27% of JSONPaths; "
      "mean ~14 queries per path");

  const maxson::workload::Trace trace =
      maxson::workload::GenerateTrace(maxson::workload::TraceGeneratorConfig{});
  const auto counts = maxson::workload::PathQueryCounts(trace);

  std::printf("%zu distinct JSONPaths; top of the distribution:\n",
              counts.size());
  std::printf("%-8s %-44s %10s\n", "rank", "jsonpath", "queries");
  for (size_t i = 0; i < counts.size() && i < 15; ++i) {
    std::printf("%-8zu %-44s %10llu\n", i + 1, counts[i].key.c_str(),
                static_cast<unsigned long long>(counts[i].query_count));
  }
  std::printf("   ...\n");
  // Decile view of the long tail.
  std::printf("\nper-decile query counts (rank percentile -> count):\n");
  for (int decile = 0; decile <= 9; ++decile) {
    const size_t idx = std::min(counts.size() - 1,
                                counts.size() * static_cast<size_t>(decile) / 10);
    std::printf("  p%02d  %8llu\n", decile * 10,
                static_cast<unsigned long long>(counts[idx].query_count));
  }

  for (double fraction : {0.10, 0.27, 0.50}) {
    const auto power = maxson::workload::SummarizePowerLaw(counts, fraction);
    std::printf("\ntop %4.0f%% of paths carry %5.1f%% of traffic",
                fraction * 100, power.traffic_share * 100);
    if (fraction == 0.27) std::printf("   (paper: 89%%)");
  }
  const auto summary = maxson::workload::SummarizePowerLaw(counts, 0.27);
  std::printf("\nmean queries per path: %.1f (paper: ~14)\n",
              summary.mean_queries_per_path);
  std::printf("duplicate parse traffic share: %.1f%% (paper: >89%%)\n",
              maxson::workload::DuplicateParseTrafficShare(trace) * 100);
  return 0;
}
