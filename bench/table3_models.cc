// Table III: MPJP prediction quality of LR, SVM, MLPClassifier, and
// LSTM+CRF on the workload trace (70/20/10 train/validation/test split).
//
// Paper shape: the static models have perfect-ish precision but poor recall
// (they cannot exploit date sequences, so weekly / phase-dependent paths
// are missed), while LSTM+CRF keeps precision high and lifts recall,
// giving the best F1 (paper: P=0.985 R=0.912 F1=0.947).

#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "common/random.h"
#include "core/collector.h"
#include "core/predictor.h"
#include "ml/dataset.h"
#include "ml/metrics.h"
#include "workload/trace_generator.h"

using maxson::core::JsonPathCollector;
using maxson::core::JsonPathPredictor;
using maxson::core::PredictorConfig;
using maxson::core::PredictorModel;
using maxson::core::PredictorModelName;

int main() {
  maxson::bench::PrintHeader(
      "Table III — MPJP predictor comparison (LR / SVM / MLP / LSTM+CRF)",
      "static models: high precision, low recall; LSTM+CRF best F1 "
      "(0.985 / 0.912 / 0.947)");

  maxson::workload::TraceGeneratorConfig trace_config;
  trace_config.num_days = 45;
  const auto trace = maxson::workload::GenerateTrace(trace_config);
  JsonPathCollector collector;
  collector.RecordTrace(trace);

  // Build the dataset once with the default one-week window; sub-sample to
  // keep single-core training time reasonable.
  PredictorConfig base;
  base.window_days = 7;
  base.epochs = 8;
  JsonPathPredictor builder(base);
  std::vector<maxson::ml::Sample> samples =
      builder.BuildDataset(collector, 10, 40);
  maxson::Rng rng(17);
  maxson::ml::DatasetSplit split =
      maxson::ml::SplitDataset(std::move(samples), 0.7, 0.2, &rng);
  std::printf("dataset: %zu train / %zu validation / %zu test samples\n\n",
              split.train.size(), split.validation.size(), split.test.size());

  const PredictorModel models[] = {
      PredictorModel::kLogisticRegression, PredictorModel::kLinearSvm,
      PredictorModel::kMlp, PredictorModel::kLstmCrf};

  std::printf("%-15s %10s %10s %10s\n", "Algorithm", "Precision", "Recall",
              "F1-Score");
  double best_f1 = 0.0;
  const char* best_name = "";
  double static_best_recall = 0.0;
  double lstmcrf_recall = 0.0;
  for (PredictorModel model : models) {
    PredictorConfig config = base;
    config.model = model;
    JsonPathPredictor predictor(config);
    if (auto st = predictor.Train(split.train); !st.ok()) {
      std::fprintf(stderr, "training %s failed: %s\n",
                   PredictorModelName(model), st.ToString().c_str());
      return 1;
    }
    const auto metrics = predictor.Evaluate(split.test);
    std::printf("%-15s %10.3f %10.3f %10.3f\n", PredictorModelName(model),
                metrics.Precision(), metrics.Recall(), metrics.F1());
    if (metrics.F1() > best_f1) {
      best_f1 = metrics.F1();
      best_name = PredictorModelName(model);
    }
    if (model == PredictorModel::kLstmCrf) {
      lstmcrf_recall = metrics.Recall();
    } else {
      static_best_recall = std::max(static_best_recall, metrics.Recall());
    }
  }
  std::printf("\nbest F1: %s (paper: LSTM+CRF)\n", best_name);
  std::printf("LSTM+CRF recall beats best static-model recall: %s "
              "(%.3f vs %.3f)\n",
              lstmcrf_recall > static_best_recall ? "YES" : "NO",
              lstmcrf_recall, static_best_recall);
  return 0;
}
