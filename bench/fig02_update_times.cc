// Fig. 2: time of table updates during the day.
//
// Regenerates the histogram of table-update hours from the synthetic trace:
// updates must be frequent around noon and rare at midnight, which is the
// observation that makes midnight the natural cache-population window.

#include <algorithm>
#include <cstdio>

#include "bench/bench_util.h"
#include "workload/trace_generator.h"
#include "workload/workload_stats.h"

int main() {
  maxson::bench::PrintHeader(
      "Fig. 2 — time of table updates during the day",
      "updates are more frequent at noon, but rare at midnight");

  const maxson::workload::Trace trace =
      maxson::workload::GenerateTrace(maxson::workload::TraceGeneratorConfig{});
  const auto histogram = maxson::workload::UpdateHourHistogram(trace);

  uint64_t max_count = 1;
  for (uint64_t c : histogram) max_count = std::max(max_count, c);

  std::printf("%-6s %8s  %s\n", "hour", "updates", "");
  for (int h = 0; h < 24; ++h) {
    const int bar =
        static_cast<int>(50.0 * static_cast<double>(histogram[h]) /
                         static_cast<double>(max_count));
    std::printf("%02d:00  %8llu  %.*s\n", h,
                static_cast<unsigned long long>(histogram[h]), bar,
                "##################################################");
  }

  const uint64_t noon = histogram[11] + histogram[12] + histogram[13];
  const uint64_t midnight = histogram[23] + histogram[0] + histogram[1];
  std::printf("\nnoon window (11-13): %llu updates; midnight window (23-01): "
              "%llu updates; ratio %.1fx\n",
              static_cast<unsigned long long>(noon),
              static_cast<unsigned long long>(midnight),
              midnight == 0 ? 0.0
                            : static_cast<double>(noon) /
                                  static_cast<double>(midnight));
  std::printf("shape reproduced: %s\n",
              noon > 3 * std::max<uint64_t>(1, midnight) ? "YES" : "NO");
  return 0;
}
