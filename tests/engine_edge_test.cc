// Edge-case sweep for the engine: NULL semantics, empty inputs, multi-key
// ordering, joins with empty/NULL sides, LIMIT extremes, and a
// parameterized truth table for binary operators.

#include <filesystem>

#include "catalog/catalog.h"
#include "engine/engine.h"
#include "gtest/gtest.h"
#include "storage/corc_writer.h"
#include "storage/file_system.h"

namespace maxson::engine {
namespace {

using storage::FileSystem;
using storage::Schema;
using storage::TypeKind;
using storage::Value;

class EngineEdgeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = (std::filesystem::temp_directory_path() /
            ("maxson_edge_" + std::to_string(::getpid())))
               .string();
    ASSERT_TRUE(FileSystem::RemoveAll(dir_).ok());
    ASSERT_TRUE(catalog_.CreateDatabase("db").ok());
    // Table with NULLs sprinkled in: (id, grp, val)
    // id: 0..9; grp cycles a,b,NULL; val = id*10, NULL when id%4==3.
    Schema schema;
    schema.AddField("id", TypeKind::kInt64);
    schema.AddField("grp", TypeKind::kString);
    schema.AddField("val", TypeKind::kInt64);
    ASSERT_TRUE(FileSystem::MakeDirs(dir_ + "/t").ok());
    storage::CorcWriter writer(dir_ + "/t/" + FileSystem::PartFileName(0),
                               schema, {});
    ASSERT_TRUE(writer.Open().ok());
    for (int i = 0; i < 10; ++i) {
      Value grp = i % 3 == 2 ? Value::Null()
                             : Value::String(i % 3 == 0 ? "a" : "b");
      Value val = i % 4 == 3 ? Value::Null() : Value::Int64(i * 10);
      ASSERT_TRUE(writer.AppendRow({Value::Int64(i), grp, val}).ok());
    }
    ASSERT_TRUE(writer.Close().ok());
    Register("t", schema, dir_ + "/t");

    // Empty table (one part file, zero rows).
    ASSERT_TRUE(FileSystem::MakeDirs(dir_ + "/empty").ok());
    storage::CorcWriter empty_writer(
        dir_ + "/empty/" + FileSystem::PartFileName(0), schema, {});
    ASSERT_TRUE(empty_writer.Open().ok());
    ASSERT_TRUE(empty_writer.Close().ok());
    Register("empty", schema, dir_ + "/empty");
  }
  void TearDown() override { ASSERT_TRUE(FileSystem::RemoveAll(dir_).ok()); }

  void Register(const std::string& name, const Schema& schema,
                const std::string& location) {
    catalog::TableInfo info;
    info.database = "db";
    info.name = name;
    info.schema = schema;
    info.location = location;
    ASSERT_TRUE(catalog_.CreateTable(info).ok());
  }

  QueryResult Run(const std::string& sql) {
    EngineConfig config;
    config.default_database = "db";
    QueryEngine engine(&catalog_, config);
    auto result = engine.Execute(sql);
    EXPECT_TRUE(result.ok()) << sql << " -> " << result.status();
    return result.ok() ? std::move(*result) : QueryResult{};
  }

  std::string dir_;
  catalog::Catalog catalog_;
};

TEST_F(EngineEdgeTest, NullsNeverMatchComparisons) {
  // val is NULL for ids 3 and 7; neither < nor >= matches them.
  EXPECT_EQ(Run("SELECT id FROM t WHERE val < 999").batch.num_rows(), 8u);
  EXPECT_EQ(Run("SELECT id FROM t WHERE val >= 0").batch.num_rows(), 8u);
  EXPECT_EQ(Run("SELECT id FROM t WHERE val IS NULL").batch.num_rows(), 2u);
  EXPECT_EQ(Run("SELECT id FROM t WHERE val IS NOT NULL").batch.num_rows(),
            8u);
}

TEST_F(EngineEdgeTest, NullGroupFormsItsOwnGroup) {
  QueryResult r =
      Run("SELECT grp, COUNT(*) AS n FROM t GROUP BY grp ORDER BY n DESC");
  // Groups: a (ids 0,3,6,9 -> 4), b (ids 1,4,7 -> 3), NULL (2,5,8 -> 3).
  ASSERT_EQ(r.batch.num_rows(), 3u);
  int total = 0;
  for (size_t i = 0; i < 3; ++i) {
    total += static_cast<int>(r.batch.column(1).GetValue(i).int64_value());
  }
  EXPECT_EQ(total, 10);
}

TEST_F(EngineEdgeTest, CountIgnoresNullsSumSkipsThem) {
  QueryResult r = Run("SELECT COUNT(val), COUNT(*), sum(val) FROM t");
  EXPECT_EQ(r.batch.column(0).GetValue(0).int64_value(), 8);   // non-null
  EXPECT_EQ(r.batch.column(1).GetValue(0).int64_value(), 10);  // all rows
  // sum of id*10 for ids != 3,7: (0+1+2+4+5+6+8+9)*10 = 350.
  EXPECT_DOUBLE_EQ(r.batch.column(2).GetValue(0).AsDouble(), 350.0);
}

TEST_F(EngineEdgeTest, EmptyTableBehaviour) {
  EXPECT_EQ(Run("SELECT id FROM empty").batch.num_rows(), 0u);
  QueryResult agg = Run("SELECT COUNT(*), min(val) FROM empty");
  ASSERT_EQ(agg.batch.num_rows(), 1u);
  EXPECT_EQ(agg.batch.column(0).GetValue(0).int64_value(), 0);
  EXPECT_TRUE(agg.batch.column(1).GetValue(0).is_null());
  EXPECT_EQ(Run("SELECT grp, COUNT(*) FROM empty GROUP BY grp")
                .batch.num_rows(),
            0u);
}

TEST_F(EngineEdgeTest, MultiKeyOrderByWithDirections) {
  QueryResult r = Run(
      "SELECT grp, id FROM t WHERE grp IS NOT NULL "
      "ORDER BY grp ASC, id DESC");
  ASSERT_EQ(r.batch.num_rows(), 7u);
  // All 'a' rows first (ids desc: 9,6,3,0) then 'b' (7,4,1).
  EXPECT_EQ(r.batch.column(0).GetString(0), "a");
  EXPECT_EQ(r.batch.column(1).GetValue(0).int64_value(), 9);
  EXPECT_EQ(r.batch.column(1).GetValue(3).int64_value(), 0);
  EXPECT_EQ(r.batch.column(0).GetString(4), "b");
  EXPECT_EQ(r.batch.column(1).GetValue(4).int64_value(), 7);
}

TEST_F(EngineEdgeTest, LimitExtremes) {
  EXPECT_EQ(Run("SELECT id FROM t LIMIT 0").batch.num_rows(), 0u);
  EXPECT_EQ(Run("SELECT id FROM t LIMIT 99999").batch.num_rows(), 10u);
  EXPECT_EQ(Run("SELECT id FROM t ORDER BY id DESC LIMIT 1")
                .batch.column(0)
                .GetValue(0)
                .int64_value(),
            9);
}

TEST_F(EngineEdgeTest, JoinWithEmptySideYieldsNothing) {
  EXPECT_EQ(Run("SELECT a.id FROM db.t a JOIN db.empty b ON a.id = b.id")
                .batch.num_rows(),
            0u);
  EXPECT_EQ(Run("SELECT a.id FROM db.empty a JOIN db.t b ON a.id = b.id")
                .batch.num_rows(),
            0u);
}

TEST_F(EngineEdgeTest, NullJoinKeysNeverMatch) {
  // grp is NULL for 3 rows on each side; SQL semantics: NULL != NULL.
  QueryResult r =
      Run("SELECT a.id FROM db.t a JOIN db.t b ON a.grp = b.grp");
  // 'a' rows: 4x4 = 16 pairs; 'b' rows: 3x3 = 9 pairs; NULLs: 0.
  EXPECT_EQ(r.batch.num_rows(), 25u);
}

TEST_F(EngineEdgeTest, WhereOnJoinOutputFiltersPairs) {
  QueryResult r = Run(
      "SELECT a.id, b.id FROM db.t a JOIN db.t b ON a.grp = b.grp "
      "WHERE a.id < b.id");
  // From 16 'a'-pairs: C(4,2)=6 ordered; from 9 'b'-pairs: C(3,2)=3.
  EXPECT_EQ(r.batch.num_rows(), 9u);
}

struct BinOpCase {
  const char* expr;
  const char* expected;  // rendered result on the single-row probe
};

class BinaryOpTruthTest : public ::testing::TestWithParam<BinOpCase> {};

TEST_P(BinaryOpTruthTest, EvaluatesToExpected) {
  // Probe expressions against a one-row table built on the fly.
  const std::string dir =
      (std::filesystem::temp_directory_path() /
       ("maxson_truth_" + std::to_string(::getpid())))
          .string();
  ASSERT_TRUE(FileSystem::RemoveAll(dir).ok());
  ASSERT_TRUE(FileSystem::MakeDirs(dir + "/one").ok());
  Schema schema;
  schema.AddField("x", TypeKind::kInt64);
  storage::CorcWriter writer(dir + "/one/" + FileSystem::PartFileName(0),
                             schema, {});
  ASSERT_TRUE(writer.Open().ok());
  ASSERT_TRUE(writer.AppendRow({Value::Int64(5)}).ok());
  ASSERT_TRUE(writer.Close().ok());
  catalog::Catalog catalog;
  ASSERT_TRUE(catalog.CreateDatabase("db").ok());
  catalog::TableInfo info;
  info.database = "db";
  info.name = "one";
  info.schema = schema;
  info.location = dir + "/one";
  ASSERT_TRUE(catalog.CreateTable(info).ok());

  EngineConfig config;
  config.default_database = "db";
  QueryEngine engine(&catalog, config);
  const BinOpCase& c = GetParam();
  auto result =
      engine.Execute(std::string("SELECT ") + c.expr + " AS r FROM db.one");
  ASSERT_TRUE(result.ok()) << c.expr << ": " << result.status();
  ASSERT_EQ(result->batch.num_rows(), 1u);
  EXPECT_EQ(result->batch.column(0).GetValue(0).ToString(), c.expected)
      << c.expr;
  ASSERT_TRUE(FileSystem::RemoveAll(dir).ok());
}

INSTANTIATE_TEST_SUITE_P(
    Cases, BinaryOpTruthTest,
    ::testing::Values(
        BinOpCase{"x + 2", "7"}, BinOpCase{"x - 7", "-2"},
        BinOpCase{"x * x", "25"}, BinOpCase{"x / 2", "2.5"},
        BinOpCase{"x % 3", "2"}, BinOpCase{"-x", "-5"},
        BinOpCase{"x = 5", "true"}, BinOpCase{"x != 5", "false"},
        BinOpCase{"x < 5", "false"}, BinOpCase{"x <= 5", "true"},
        BinOpCase{"x > 4", "true"}, BinOpCase{"x >= 6", "false"},
        BinOpCase{"x BETWEEN 5 AND 9", "true"},
        BinOpCase{"x BETWEEN 6 AND 9", "false"},
        BinOpCase{"NOT x = 5", "false"},
        BinOpCase{"x = 5 AND x > 1", "true"},
        BinOpCase{"x = 4 OR x = 5", "true"},
        BinOpCase{"x / 0", "NULL"},          // division by zero -> NULL
        BinOpCase{"x % 0", "NULL"},
        BinOpCase{"x + 0.5", "5.5"},         // int + double widens
        BinOpCase{"coalesce(NULL, x)", "5"},
        BinOpCase{"length(concat('ab', 'c'))", "3"},
        BinOpCase{"lower('AbC')", "abc"},
        BinOpCase{"x IN (1, 5, 9)", "true"},
        BinOpCase{"x NOT IN (1, 9)", "true"},
        BinOpCase{"'hello' LIKE 'h%o'", "true"}));

}  // namespace
}  // namespace maxson::engine
