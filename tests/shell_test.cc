// End-to-end test of maxson_shell's command parsing: malformed `set` knob
// values and a malformed `.trace` invocation must be rejected with a
// printed error (and leave the session untouched), while well-formed
// commands keep working in the same session. Drives the real binary
// (MAXSON_SHELL_BINARY, injected by CMake) through a pipe.

#include <cstdio>
#include <filesystem>
#include <string>

#include "catalog/catalog.h"
#include "gtest/gtest.h"
#include "storage/file_system.h"
#include "workload/data_generator.h"

namespace maxson {
namespace {

class ShellTest : public ::testing::Test {
 protected:
  void SetUp() override {
    root_ = (std::filesystem::temp_directory_path() /
             ("maxson_shell_test_" + std::to_string(::getpid())))
                .string();
    ASSERT_TRUE(storage::FileSystem::RemoveAll(root_).ok());
    workload::JsonTableSpec spec;
    spec.database = "db";
    spec.table = "t";
    spec.num_properties = 3;
    spec.avg_json_bytes = 80;
    spec.rows = 50;
    spec.rows_per_file = 50;
    spec.rows_per_group = 25;
    spec.seed = 3;
    catalog::Catalog catalog;
    auto generated =
        workload::GenerateJsonTable(spec, root_ + "/warehouse", 1, &catalog);
    ASSERT_TRUE(generated.ok()) << generated.status();
    ASSERT_TRUE(catalog.Save(root_ + "/warehouse/catalog.json").ok());
  }
  void TearDown() override {
    ASSERT_TRUE(storage::FileSystem::RemoveAll(root_).ok());
  }

  /// Pipes `input` into the shell, returns combined stdout+stderr.
  std::string RunShell(const std::string& input) {
    const std::string command =
        "printf '%s' '" + input + "' | " + MAXSON_SHELL_BINARY +
        " --warehouse " + root_ + "/warehouse --database db --cache " + root_ +
        "/cache 2>&1";
    FILE* pipe = popen(command.c_str(), "r");
    EXPECT_NE(pipe, nullptr);
    if (pipe == nullptr) return "";
    std::string output;
    char buffer[512];
    while (fgets(buffer, sizeof(buffer), pipe) != nullptr) output += buffer;
    const int rc = pclose(pipe);
    EXPECT_EQ(rc, 0) << output;
    return output;
  }

  std::string root_;
};

TEST_F(ShellTest, MalformedSetValuesAreRejectedWithErrors) {
  const std::string output = RunShell(
      "set threads abc\n"
      "set threads -2\n"
      "set trace maybe\n"
      "set rawfilter yes\n"
      "set budget 12MB\n"
      "set nonsense 1\n"
      ".quit\n");
  EXPECT_NE(output.find("option 'threads' expects N, got 'abc'"),
            std::string::npos)
      << output;
  EXPECT_NE(output.find("got '-2'"), std::string::npos) << output;
  EXPECT_NE(output.find("option 'trace' expects on|off, got 'maybe'"),
            std::string::npos)
      << output;
  EXPECT_NE(output.find("option 'rawfilter' expects on|off, got 'yes'"),
            std::string::npos)
      << output;
  EXPECT_NE(output.find("option 'budget' expects BYTES, got '12MB'"),
            std::string::npos)
      << output;
  // Unknown knobs name the known set and print the registry's usage line.
  EXPECT_NE(output.find("unknown option 'nonsense'"), std::string::npos)
      << output;
  EXPECT_NE(output.find("usage: "), std::string::npos) << output;
  EXPECT_NE(output.find("set threads N"), std::string::npos) << output;
  EXPECT_NE(output.find("set sharedscan on|off"), std::string::npos) << output;
}

TEST_F(ShellTest, MalformedSetLeavesSessionUsable) {
  // A rejected knob must not half-apply: threads stays at its start value
  // (1) after the bad `set threads`, and valid commands still work.
  const std::string output = RunShell(
      "set threads banana\n"
      ".threads\n"
      "set trace on\n"
      "set threads 2\n"
      ".quit\n");
  EXPECT_NE(output.find("option 'threads' expects N, got 'banana'"),
            std::string::npos)
      << output;
  EXPECT_NE(output.find("threads: 1"), std::string::npos) << output;
  EXPECT_NE(output.find("trace = on"), std::string::npos) << output;
  EXPECT_NE(output.find("threads: 2"), std::string::npos) << output;
}

TEST_F(ShellTest, FaultInjectKnobArmsAndDisarmsInjector) {
  const std::string output = RunShell(
      "set faultinject torn:5\n"
      ".stats\n"
      "set faultinject bogus\n"
      "set faultinject off\n"
      ".quit\n");
  EXPECT_NE(output.find("faultinject = torn:5"), std::string::npos) << output;
  EXPECT_NE(output.find("faultinject:    torn:5"), std::string::npos)
      << output;
  EXPECT_NE(output.find("unknown fault mode 'bogus'"), std::string::npos)
      << output;
  EXPECT_NE(output.find("faultinject = off"), std::string::npos) << output;
}

TEST_F(ShellTest, TraceCommandRejectsMissingFile) {
  const std::string output = RunShell(
      ".trace\n"
      ".quit\n");
  EXPECT_NE(output.find("error: .trace expects a file path"),
            std::string::npos)
      << output;
}

TEST_F(ShellTest, TraceCommandReportsUnwritablePath) {
  const std::string output = RunShell(
      ".trace /nonexistent-dir/trace.json\n"
      ".quit\n");
  EXPECT_NE(output.find("error: cannot open /nonexistent-dir/trace.json"),
            std::string::npos)
      << output;
}

TEST_F(ShellTest, ResultCacheKnobServesRepeatsFromCache) {
  const std::string output = RunShell(
      "set resultcache on\n"
      "SELECT id FROM t WHERE id < 3\n"
      "SELECT id FROM t WHERE id < 3\n"
      ".serve\n"
      "set resultcache maybe\n"
      "set resultcache off\n"
      ".quit\n");
  EXPECT_NE(output.find("resultcache = on"), std::string::npos) << output;
  EXPECT_NE(output.find("(result cache hit)"), std::string::npos) << output;
  EXPECT_NE(output.find("result cache:   on; 1 hits, 1 misses"),
            std::string::npos)
      << output;
  EXPECT_NE(output.find("option 'resultcache' expects on|off, got 'maybe'"),
            std::string::npos)
      << output;
  EXPECT_NE(output.find("resultcache = off"), std::string::npos) << output;
}

TEST_F(ShellTest, AdmissionKnobsApplyAndZeroCapacityRejects) {
  const std::string output = RunShell(
      "set maxqueue 0\n"
      "set maxinflight 0\n"
      "SELECT id FROM t\n"
      ".serve\n"
      "set maxinflight abc\n"
      ".quit\n");
  EXPECT_NE(output.find("maxqueue = 0"), std::string::npos) << output;
  EXPECT_NE(output.find("maxinflight = 0"), std::string::npos) << output;
  EXPECT_NE(output.find("resource exhausted"), std::string::npos) << output;
  EXPECT_NE(output.find("1 rejected"), std::string::npos) << output;
  EXPECT_NE(output.find("option 'maxinflight' expects N, got 'abc'"),
            std::string::npos)
      << output;
}

TEST_F(ShellTest, ValidKnobsAndQueriesStillWork) {
  const std::string output = RunShell(
      "set rawfilter on\n"
      "set budget 1000000\n"
      "set sharedscan on\n"
      "set morselsize 1000\n"
      "SELECT id FROM t WHERE id < 3\n"
      ".stats\n"
      "set sharedscan off\n"
      ".quit\n");
  EXPECT_NE(output.find("rawfilter = on"), std::string::npos) << output;
  EXPECT_NE(output.find("budget = 1000000"), std::string::npos) << output;
  EXPECT_NE(output.find("sharedscan = on"), std::string::npos) << output;
  EXPECT_NE(output.find("morselsize = 1000"), std::string::npos) << output;
  // The query above ran with sharing on, so the stats line shows the knobs
  // and at least one subscription.
  EXPECT_NE(output.find("sharedscan:     on (morselsize 1000)"),
            std::string::npos)
      << output;
  EXPECT_NE(output.find("id"), std::string::npos) << output;
  EXPECT_EQ(output.find("error:"), std::string::npos) << output;
}

}  // namespace
}  // namespace maxson
