// Unit tests of the execution runtime: ThreadPool task dispatch, TaskGroup
// join/error semantics, ParallelFor determinism, chunk decomposition, and
// the logging sink under concurrency.

#include <atomic>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/logging.h"
#include "exec/thread_pool.h"
#include "gtest/gtest.h"

namespace maxson::exec {
namespace {

TEST(MakeChunksTest, BoundariesDependOnlyOnSizes) {
  EXPECT_TRUE(MakeChunks(0, 4).empty());

  const std::vector<ChunkRange> one = MakeChunks(3, 4);
  ASSERT_EQ(one.size(), 1u);
  EXPECT_EQ(one[0].begin, 0u);
  EXPECT_EQ(one[0].end, 3u);

  const std::vector<ChunkRange> chunks = MakeChunks(10, 4);
  ASSERT_EQ(chunks.size(), 3u);
  EXPECT_EQ(chunks[0].begin, 0u);
  EXPECT_EQ(chunks[0].end, 4u);
  EXPECT_EQ(chunks[1].begin, 4u);
  EXPECT_EQ(chunks[1].end, 8u);
  EXPECT_EQ(chunks[2].begin, 8u);
  EXPECT_EQ(chunks[2].end, 10u);

  // Exact multiple: no empty tail chunk.
  EXPECT_EQ(MakeChunks(8, 4).size(), 2u);
}

TEST(ThreadPoolTest, DegreeOneRunsInlineOnCaller) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.num_threads(), 1u);
  const std::thread::id caller = std::this_thread::get_id();
  std::thread::id ran_on;
  pool.Submit([&] { ran_on = std::this_thread::get_id(); });
  EXPECT_EQ(ran_on, caller);
}

TEST(ThreadPoolTest, SubmittedTasksAllRun) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.num_threads(), 4u);
  std::atomic<int> count{0};
  TaskGroup group(&pool);
  for (int i = 0; i < 100; ++i) {
    group.Spawn([&]() -> Status {
      ++count;
      return Status::Ok();
    });
  }
  EXPECT_TRUE(group.Wait().ok());
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPoolTest, DestructionRunsQueuedTasks) {
  // Regression test for the destructor restructure the thread-safety
  // annotations forced: ~ThreadPool used to read `workers_` without the
  // lock while a concurrent Submit's EnsureStarted could still be
  // appending to it. The destructor now moves the handles out under the
  // lock, and workers drain the queue before exiting, so every task
  // submitted before destruction runs exactly once.
  for (int round = 0; round < 20; ++round) {
    std::atomic<int> count{0};
    {
      ThreadPool pool(4);
      for (int i = 0; i < 64; ++i) {
        pool.Submit([&] { ++count; });
      }
      // Pool destroyed here with most of the queue still pending.
    }
    EXPECT_EQ(count.load(), 64);
  }
}

TEST(ThreadPoolTest, DestructionRacesConcurrentSubmitters) {
  // Drive EnsureStarted from several threads while the pool is being
  // torn down soon after: under TSan this covers the dtor/Submit race on
  // `workers_` that the annotated Mutex now makes impossible.
  for (int round = 0; round < 10; ++round) {
    std::atomic<int> count{0};
    std::vector<std::thread> submitters;
    {
      ThreadPool pool(4);
      for (int t = 0; t < 4; ++t) {
        submitters.emplace_back([&] {
          for (int i = 0; i < 16; ++i) {
            pool.Submit([&] { ++count; });
          }
        });
      }
      for (std::thread& s : submitters) s.join();
    }
    EXPECT_EQ(count.load(), 64);
  }
}

TEST(TaskGroupTest, WaitIsIdempotentAndRunsEverything) {
  ThreadPool pool(2);
  TaskGroup group(&pool);
  std::atomic<int> count{0};
  for (int i = 0; i < 8; ++i) {
    group.Spawn([&]() -> Status {
      ++count;
      return Status::Ok();
    });
  }
  EXPECT_TRUE(group.Wait().ok());
  EXPECT_TRUE(group.Wait().ok());
  EXPECT_EQ(count.load(), 8);
}

TEST(TaskGroupTest, FirstErrorInSpawnOrderWins) {
  // Every task runs (siblings are not cancelled) and the returned status is
  // the first failure in spawn order, independent of which worker finished
  // first.
  for (size_t degree : {size_t{1}, size_t{4}}) {
    ThreadPool pool(degree);
    TaskGroup group(&pool);
    std::atomic<int> ran{0};
    group.Spawn([&]() -> Status {
      ++ran;
      return Status::Ok();
    });
    group.Spawn([&]() -> Status {
      ++ran;
      return Status::Internal("second");
    });
    group.Spawn([&]() -> Status {
      ++ran;
      return Status::Internal("third");
    });
    const Status status = group.Wait();
    EXPECT_FALSE(status.ok());
    EXPECT_NE(status.message().find("second"), std::string::npos);
    EXPECT_EQ(ran.load(), 3);
  }
}

TEST(ParallelForTest, CoversEveryIndexExactlyOnce) {
  for (size_t degree : {size_t{1}, size_t{3}, size_t{8}}) {
    ThreadPool pool(degree);
    std::vector<int> hits(1000, 0);
    ASSERT_TRUE(ParallelFor(&pool, hits.size(), [&](size_t i) -> Status {
                  ++hits[i];  // each index owns its slot
                  return Status::Ok();
                }).ok());
    for (int h : hits) EXPECT_EQ(h, 1);
  }
}

TEST(ParallelForTest, NullPoolRunsSequentially) {
  std::vector<int> hits(10, 0);
  ASSERT_TRUE(ParallelFor(nullptr, hits.size(), [&](size_t i) -> Status {
                ++hits[i];
                return Status::Ok();
              }).ok());
  for (int h : hits) EXPECT_EQ(h, 1);
}

TEST(ParallelForTest, FirstErrorByIndexEvenWhenLaterIndexFailsFirst) {
  ThreadPool pool(4);
  const Status status = ParallelFor(&pool, 16, [&](size_t i) -> Status {
    if (i == 3) {
      // Give later iterations a head start so a scheduling-dependent
      // implementation would report index 11 instead.
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
      return Status::Internal("index-3");
    }
    if (i == 11) return Status::Internal("index-11");
    return Status::Ok();
  });
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.message().find("index-3"), std::string::npos);
}

TEST(ParallelForTest, NestedParallelForDoesNotDeadlock) {
  // The cacher can fan out while a query is fanning out on the same pool;
  // Wait() helps run pending tasks, so nesting must complete even when the
  // pool is saturated.
  ThreadPool pool(2);
  std::atomic<int> count{0};
  ASSERT_TRUE(ParallelFor(&pool, 8, [&](size_t) -> Status {
                return ParallelFor(&pool, 8, [&](size_t) -> Status {
                  ++count;
                  return Status::Ok();
                });
              }).ok());
  EXPECT_EQ(count.load(), 64);
}

TEST(LoggingTest, ConcurrentRecordsNeverInterleaveWithinALine) {
  // Redirect the sink, hammer it from several threads, and verify every
  // emitted line is one intact record.
  std::ostringstream captured;
  std::streambuf* saved = std::cerr.rdbuf(captured.rdbuf());
  const LogLevel saved_level = GetLogLevel();
  SetLogLevel(LogLevel::kDebug);

  constexpr int kThreads = 8;
  constexpr int kLines = 200;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([t] {
      for (int i = 0; i < kLines; ++i) {
        MAXSON_LOG(Info) << "worker=" << t << " line=" << i << " end";
      }
    });
  }
  for (std::thread& t : threads) t.join();

  std::cerr.rdbuf(saved);
  SetLogLevel(saved_level);

  std::istringstream lines(captured.str());
  std::string line;
  int total = 0;
  std::set<std::string> seen;
  while (std::getline(lines, line)) {
    ++total;
    // An interleaved write would break the prefix...suffix shape or fuse
    // two records into one line.
    EXPECT_NE(line.find("[INFO "), std::string::npos) << line;
    EXPECT_EQ(line.find("end"), line.size() - 3) << line;
    EXPECT_TRUE(seen.insert(line).second) << "duplicate: " << line;
  }
  EXPECT_EQ(total, kThreads * kLines);
}

}  // namespace
}  // namespace maxson::exec
