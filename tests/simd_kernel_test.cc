// Differential tests of the SIMD kernel layer (src/simd/): every dispatched
// kernel must be byte-identical to an independent scalar reference at every
// ISA level the host supports, on random and adversarial inputs covering
// all tail lengths around the 16/32/64-byte block sizes. On top of the
// kernel-level checks, the structural index is held to a reimplementation
// of the original byte-at-a-time algorithm, and end-to-end queries must
// return identical batches and counter totals under each forced level.

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <limits>
#include <string>
#include <vector>

#include "catalog/catalog.h"
#include "common/random.h"
#include "core/maxson.h"
#include "gtest/gtest.h"
#include "json/dom_parser.h"
#include "json/json_writer.h"
#include "json/mison_parser.h"
#include "simd/isa.h"
#include "simd/kernels.h"
#include "storage/file_system.h"
#include "workload/data_generator.h"

namespace maxson {
namespace {

using simd::BitmapWords;
using simd::Isa;
using simd::kWordBits;

/// Forces a dispatch level for one scope and restores the previous one.
class IsaGuard {
 public:
  explicit IsaGuard(Isa level) : previous_(simd::ActiveIsa()) {
    EXPECT_EQ(simd::ForceIsa(level), level)
        << "host cannot run " << simd::IsaName(level);
  }
  ~IsaGuard() { simd::ForceIsa(previous_); }

 private:
  Isa previous_;
};

/// Every level the host supports, scalar first.
std::vector<Isa> SupportedLevels() {
  std::vector<Isa> levels = {Isa::kScalar};
  if (simd::BestSupportedIsa() >= Isa::kSse2) levels.push_back(Isa::kSse2);
  if (simd::BestSupportedIsa() >= Isa::kAvx2) levels.push_back(Isa::kAvx2);
  return levels;
}

// ---- Independent scalar references (byte-at-a-time, no word tricks) ----

void RefClassify(const std::string& s, std::vector<uint64_t>* quotes,
                 std::vector<uint64_t>* backslashes,
                 std::vector<uint64_t>* structurals) {
  const size_t words = BitmapWords(s.size());
  quotes->assign(words, 0);
  backslashes->assign(words, 0);
  structurals->assign(words, 0);
  for (size_t i = 0; i < s.size(); ++i) {
    const uint64_t bit = uint64_t{1} << (i % kWordBits);
    if (s[i] == '"') (*quotes)[i / kWordBits] |= bit;
    if (s[i] == '\\') (*backslashes)[i / kWordBits] |= bit;
    if (s[i] == ':' || s[i] == '{' || s[i] == '}') {
      (*structurals)[i / kWordBits] |= bit;
    }
  }
}

void RefClassifyFull(const std::string& s, std::vector<uint64_t>* quotes,
                     std::vector<uint64_t>* backslashes,
                     std::vector<uint64_t>* structurals) {
  const size_t words = BitmapWords(s.size());
  quotes->assign(words, 0);
  backslashes->assign(words, 0);
  structurals->assign(words, 0);
  for (size_t i = 0; i < s.size(); ++i) {
    const uint64_t bit = uint64_t{1} << (i % kWordBits);
    if (s[i] == '"') (*quotes)[i / kWordBits] |= bit;
    if (s[i] == '\\') (*backslashes)[i / kWordBits] |= bit;
    if (s[i] == ':' || s[i] == ',' || s[i] == '{' || s[i] == '}' ||
        s[i] == '[' || s[i] == ']') {
      (*structurals)[i / kWordBits] |= bit;
    }
  }
}

size_t RefSkipWhitespace(const std::string& s, size_t pos) {
  while (pos < s.size() && (s[pos] == ' ' || s[pos] == '\t' ||
                            s[pos] == '\n' || s[pos] == '\r')) {
    ++pos;
  }
  return pos;
}

size_t RefFindStringSpecial(const std::string& s, size_t pos) {
  while (pos < s.size() && s[pos] != '"' && s[pos] != '\\') ++pos;
  return pos;
}

size_t RefFindSubstring(const std::string& hay, const std::string& needle) {
  const size_t found = hay.find(needle);
  return found == std::string::npos ? simd::kNpos : found;
}

/// Escaped positions by the textbook rule — a backslash that is not itself
/// escaped escapes the next character — which is equivalent to "preceded by
/// an odd-length backslash run" and is the definition the word-parallel
/// helper must reproduce across word boundaries.
std::vector<bool> RefEscaped(const std::string& s) {
  std::vector<bool> escaped(s.size() + 1, false);
  for (size_t i = 0; i < s.size(); ++i) {
    if (s[i] == '\\' && !escaped[i]) escaped[i + 1] = true;
  }
  escaped.resize(s.size());
  return escaped;
}

// ---- Kernel differential tests ----

class SimdKernelTest : public ::testing::Test {
 protected:
  /// Random bytes drawn from an alphabet dense in the interesting
  /// characters so quotes, backslashes, and structurals collide often.
  std::string RandomJsonish(size_t len) {
    static const char kAlphabet[] = "\"\\{}:,abc \t\n\r[]0.-";
    std::string s;
    s.reserve(len);
    for (size_t i = 0; i < len; ++i) {
      s.push_back(kAlphabet[rng_.NextBounded(sizeof(kAlphabet) - 1)]);
    }
    return s;
  }

  Rng rng_{190};
};

TEST_F(SimdKernelTest, ClassifyJsonMatchesReferenceAtEveryLevel) {
  std::vector<std::string> inputs;
  for (size_t len = 0; len <= 130; ++len) inputs.push_back(RandomJsonish(len));
  inputs.push_back(std::string(64, '"'));
  inputs.push_back(std::string(64, '\\'));
  inputs.push_back(std::string(200, '{'));
  inputs.push_back(RandomJsonish(4096));

  std::vector<uint64_t> want_q, want_b, want_s;
  for (const std::string& s : inputs) {
    RefClassify(s, &want_q, &want_b, &want_s);
    for (Isa level : SupportedLevels()) {
      IsaGuard guard(level);
      const size_t words = BitmapWords(s.size());
      std::vector<uint64_t> q(words, ~uint64_t{0});
      std::vector<uint64_t> b(words, ~uint64_t{0});
      std::vector<uint64_t> st(words, ~uint64_t{0});
      simd::ClassifyJson(s.data(), s.size(), q.data(), b.data(), st.data());
      EXPECT_EQ(q, want_q) << "quotes, isa=" << simd::IsaName(level)
                           << " len=" << s.size();
      EXPECT_EQ(b, want_b) << "backslashes, isa=" << simd::IsaName(level)
                           << " len=" << s.size();
      EXPECT_EQ(st, want_s) << "structurals, isa=" << simd::IsaName(level)
                            << " len=" << s.size();
    }
  }
}

TEST_F(SimdKernelTest, ClassifyJsonFullMatchesReferenceAtEveryLevel) {
  std::vector<std::string> inputs;
  for (size_t len = 0; len <= 130; ++len) inputs.push_back(RandomJsonish(len));
  inputs.push_back(std::string(64, '['));
  inputs.push_back(std::string(64, ','));
  inputs.push_back(std::string(200, ']'));
  inputs.push_back(RandomJsonish(4096));

  std::vector<uint64_t> want_q, want_b, want_s;
  for (const std::string& s : inputs) {
    RefClassifyFull(s, &want_q, &want_b, &want_s);
    for (Isa level : SupportedLevels()) {
      IsaGuard guard(level);
      const size_t words = BitmapWords(s.size());
      std::vector<uint64_t> q(words, ~uint64_t{0});
      std::vector<uint64_t> b(words, ~uint64_t{0});
      std::vector<uint64_t> st(words, ~uint64_t{0});
      simd::ClassifyJsonFull(s.data(), s.size(), q.data(), b.data(),
                             st.data());
      EXPECT_EQ(q, want_q) << "quotes, isa=" << simd::IsaName(level)
                           << " len=" << s.size();
      EXPECT_EQ(b, want_b) << "backslashes, isa=" << simd::IsaName(level)
                           << " len=" << s.size();
      EXPECT_EQ(st, want_s) << "structurals, isa=" << simd::IsaName(level)
                            << " len=" << s.size();
    }
  }
}

TEST_F(SimdKernelTest, EscapedPositionsMatchesRunCountingAcrossWords) {
  std::vector<std::string> inputs;
  for (int trial = 0; trial < 200; ++trial) {
    inputs.push_back(RandomJsonish(1 + rng_.NextBounded(200)));
  }
  // Backslash runs of every length straddling the 64-byte word boundary.
  for (size_t run = 1; run <= 6; ++run) {
    for (size_t start = 60; start <= 66; ++start) {
      std::string s(140, 'a');
      for (size_t i = 0; i < run; ++i) s[start + i] = '\\';
      s[start + run] = '"';
      inputs.push_back(s);
    }
  }
  for (const std::string& s : inputs) {
    const std::vector<bool> want = RefEscaped(s);
    const size_t words = BitmapWords(s.size());
    std::vector<uint64_t> q(words, 0), b(words, 0), st(words, 0);
    simd::ClassifyJson(s.data(), s.size(), q.data(), b.data(), st.data());
    uint64_t carry = 0;
    for (size_t w = 0; w < words; ++w) {
      const uint64_t escaped = simd::EscapedPositions(b[w], &carry);
      for (size_t j = 0; j < kWordBits && w * kWordBits + j < s.size(); ++j) {
        EXPECT_EQ((escaped >> j) & 1, want[w * kWordBits + j] ? 1u : 0u)
            << "position " << w * kWordBits + j << " in " << s;
      }
    }
  }
}

TEST_F(SimdKernelTest, ScanKernelsMatchReferenceAtEveryLevel) {
  std::vector<std::string> inputs;
  for (size_t len = 0; len <= 130; ++len) inputs.push_back(RandomJsonish(len));
  inputs.push_back(std::string(500, ' '));
  inputs.push_back(std::string(500, 'x'));
  for (const std::string& s : inputs) {
    const std::vector<size_t> starts = {0, 1, 15, 16, 17, 31, 32, 63, 64,
                                        s.size(), s.size() + 1};
    for (size_t pos : starts) {
      if (pos > s.size()) continue;
      const size_t want_ws = RefSkipWhitespace(s, pos);
      const size_t want_sp = RefFindStringSpecial(s, pos);
      for (Isa level : SupportedLevels()) {
        IsaGuard guard(level);
        EXPECT_EQ(simd::SkipWhitespace(s.data(), s.size(), pos), want_ws)
            << "isa=" << simd::IsaName(level) << " len=" << s.size()
            << " pos=" << pos;
        EXPECT_EQ(simd::FindStringSpecial(s.data(), s.size(), pos), want_sp)
            << "isa=" << simd::IsaName(level) << " len=" << s.size()
            << " pos=" << pos;
      }
    }
  }
}

TEST_F(SimdKernelTest, FindSubstringMatchesReferenceAtEveryLevel) {
  struct Case {
    std::string hay;
    std::string needle;
  };
  std::vector<Case> cases = {
      {"", "a"},                      // needle longer than haystack
      {"a", "a"},                     // single byte, exact
      {"b", "a"},                     // single byte, absent
      {"ab", "abc"},                  // needle > haystack
      {std::string(100, 'a'), "aa"},  // repeated characters
      {std::string(100, 'a') + "b", "ab"},  // match at the very end
      {"abxabyabz", "aby"},                 // first/last byte false positives
  };
  for (int trial = 0; trial < 400; ++trial) {
    Case c;
    const size_t nl = 1 + rng_.NextBounded(8);
    for (size_t i = 0; i < nl; ++i) {
      c.needle.push_back(static_cast<char>('a' + rng_.NextBounded(3)));
    }
    const size_t hl = rng_.NextBounded(150);
    for (size_t i = 0; i < hl; ++i) {
      c.hay.push_back(static_cast<char>('a' + rng_.NextBounded(3)));
    }
    cases.push_back(std::move(c));
  }
  for (const Case& c : cases) {
    const size_t want = RefFindSubstring(c.hay, c.needle);
    for (Isa level : SupportedLevels()) {
      IsaGuard guard(level);
      EXPECT_EQ(simd::FindSubstring(c.hay.data(), c.hay.size(),
                                    c.needle.data(), c.needle.size()),
                want)
          << "isa=" << simd::IsaName(level) << " hay='" << c.hay
          << "' needle='" << c.needle << "'";
    }
  }
}

TEST_F(SimdKernelTest, NullBitmapKernelsMatchReferenceAtEveryLevel) {
  for (size_t len = 0; len <= 130; ++len) {
    std::vector<uint8_t> bytes(len);
    for (size_t i = 0; i < len; ++i) {
      // Mix plain 0/1 with arbitrary nonzero values (a corrupt file may
      // hold anything; nonzero means null).
      bytes[i] = static_cast<uint8_t>(
          rng_.NextBool(0.3) ? (1 + rng_.NextBounded(255)) : 0);
    }
    uint64_t want_count = 0;
    const size_t words = BitmapWords(len);
    std::vector<uint64_t> want_bitmap(words, 0);
    for (size_t i = 0; i < len; ++i) {
      if (bytes[i] != 0) {
        ++want_count;
        want_bitmap[i / kWordBits] |= uint64_t{1} << (i % kWordBits);
      }
    }
    for (Isa level : SupportedLevels()) {
      IsaGuard guard(level);
      std::vector<uint64_t> bitmap(words, ~uint64_t{0});
      EXPECT_EQ(simd::NullBytesToBitmap(bytes.data(), len, bitmap.data()),
                want_count)
          << "isa=" << simd::IsaName(level) << " len=" << len;
      EXPECT_EQ(bitmap, want_bitmap)
          << "isa=" << simd::IsaName(level) << " len=" << len;
      EXPECT_EQ(simd::CountNonZeroBytes(bytes.data(), len), want_count)
          << "isa=" << simd::IsaName(level) << " len=" << len;
    }
  }
}

TEST_F(SimdKernelTest, MinMaxKernelsMatchReferenceAtEveryLevel) {
  for (size_t len = 1; len <= 130; ++len) {
    std::vector<int64_t> ints(len);
    std::vector<double> doubles(len);
    for (size_t i = 0; i < len; ++i) {
      ints[i] = rng_.NextInt(std::numeric_limits<int64_t>::min() / 2,
                             std::numeric_limits<int64_t>::max() / 2);
      doubles[i] = rng_.NextGaussian(0.0, 1e6);
    }
    // Plant extremes and signed zeros at random slots.
    ints[rng_.NextBounded(len)] = std::numeric_limits<int64_t>::min();
    ints[rng_.NextBounded(len)] = std::numeric_limits<int64_t>::max();
    doubles[rng_.NextBounded(len)] = -0.0;
    doubles[rng_.NextBounded(len)] = +0.0;

    int64_t want_imin = ints[0], want_imax = ints[0];
    double want_dmin = doubles[0], want_dmax = doubles[0];
    for (size_t i = 1; i < len; ++i) {
      if (ints[i] < want_imin) want_imin = ints[i];
      if (ints[i] > want_imax) want_imax = ints[i];
      if (doubles[i] < want_dmin) want_dmin = doubles[i];
      if (doubles[i] > want_dmax) want_dmax = doubles[i];
    }
    // Kernel contract: a zero result canonicalizes to +0.0.
    if (want_dmin == 0.0) want_dmin = 0.0;
    if (want_dmax == 0.0) want_dmax = 0.0;

    for (Isa level : SupportedLevels()) {
      IsaGuard guard(level);
      int64_t imin = 0, imax = 0;
      simd::MinMaxInt64(ints.data(), len, &imin, &imax);
      EXPECT_EQ(imin, want_imin) << "isa=" << simd::IsaName(level)
                                 << " len=" << len;
      EXPECT_EQ(imax, want_imax) << "isa=" << simd::IsaName(level)
                                 << " len=" << len;
      double dmin = 0, dmax = 0;
      simd::MinMaxDouble(doubles.data(), len, &dmin, &dmax);
      // Compare bit patterns so -0.0 vs +0.0 divergence is caught.
      uint64_t got_bits, want_bits;
      std::memcpy(&got_bits, &dmin, 8);
      std::memcpy(&want_bits, &want_dmin, 8);
      EXPECT_EQ(got_bits, want_bits)
          << "min isa=" << simd::IsaName(level) << " len=" << len;
      std::memcpy(&got_bits, &dmax, 8);
      std::memcpy(&want_bits, &want_dmax, 8);
      EXPECT_EQ(got_bits, want_bits)
          << "max isa=" << simd::IsaName(level) << " len=" << len;
    }
  }
}

// ---- Structural index vs the original byte-at-a-time algorithm ----

struct RefIndex {
  std::vector<std::pair<uint32_t, uint32_t>> colons;  // (pos, level)
  bool malformed = false;
};

/// The pre-SIMD StructuralIndex algorithm, kept verbatim as the behavioral
/// contract: escaped-quote removal by run counting, prefix-XOR string mask,
/// then the brace walk (which returns early, keeping partial colons, on an
/// unbalanced '}').
RefIndex RefStructuralIndex(const std::string& text) {
  RefIndex out;
  const size_t n = text.size();
  const size_t words = BitmapWords(n);
  if (words == 0) {
    out.malformed = true;
    return out;
  }
  std::vector<uint64_t> quote(words, 0);
  std::vector<uint64_t> structural(words, 0);
  size_t backslash_run = 0;
  for (size_t i = 0; i < n; ++i) {
    const char c = text[i];
    if (c == '\\') {
      ++backslash_run;
      continue;
    }
    if (c == '"' && backslash_run % 2 == 0) {
      quote[i / kWordBits] |= uint64_t{1} << (i % kWordBits);
    } else if (c == ':' || c == '{' || c == '}') {
      structural[i / kWordBits] |= uint64_t{1} << (i % kWordBits);
    }
    backslash_run = 0;
  }
  std::vector<uint64_t> in_string(words, 0);
  uint64_t carry = 0;
  for (size_t w = 0; w < words; ++w) {
    uint64_t q = quote[w];
    q ^= q << 1;
    q ^= q << 2;
    q ^= q << 4;
    q ^= q << 8;
    q ^= q << 16;
    q ^= q << 32;
    in_string[w] = q ^ carry;
    carry = (in_string[w] >> (kWordBits - 1)) ? ~uint64_t{0} : 0;
  }
  if (carry != 0) {
    out.malformed = true;
    return out;
  }
  uint32_t level = 0;
  for (size_t w = 0; w < words; ++w) {
    uint64_t bits = structural[w] & ~in_string[w];
    while (bits != 0) {
      const int bit = __builtin_ctzll(bits);
      bits &= bits - 1;
      const size_t i = w * kWordBits + static_cast<size_t>(bit);
      if (text[i] == '{') {
        ++level;
      } else if (text[i] == '}') {
        if (level == 0) {
          out.malformed = true;
          return out;
        }
        --level;
      } else {
        out.colons.emplace_back(static_cast<uint32_t>(i), level);
      }
    }
  }
  if (level != 0) out.malformed = true;
  return out;
}

TEST_F(SimdKernelTest, Crc32cMatchesKnownVectorAtEveryLevel) {
  // RFC 3720 (iSCSI) check value: crc32c("123456789") == 0xE3069283.
  const std::string check = "123456789";
  for (Isa level : SupportedLevels()) {
    IsaGuard guard(level);
    EXPECT_EQ(simd::Crc32c(reinterpret_cast<const uint8_t*>(check.data()),
                           check.size()),
              0xE3069283u)
        << simd::IsaName(level);
    EXPECT_EQ(simd::Crc32c(nullptr, 0), 0u) << simd::IsaName(level);
  }
}

TEST_F(SimdKernelTest, Crc32cExtendComposesAndMatchesScalarAtEveryLevel) {
  // Extend semantics: checksumming a buffer in arbitrary pieces equals
  // checksumming it whole, and every dispatch level agrees with scalar.
  for (size_t len : {0u, 1u, 7u, 8u, 63u, 64u, 65u, 1000u}) {
    const std::string data = RandomJsonish(len);
    const uint8_t* bytes = reinterpret_cast<const uint8_t*>(data.data());
    uint32_t expected = 0;
    {
      IsaGuard guard(Isa::kScalar);
      expected = simd::Crc32c(bytes, data.size());
    }
    for (Isa level : SupportedLevels()) {
      IsaGuard guard(level);
      EXPECT_EQ(simd::Crc32c(bytes, data.size()), expected)
          << simd::IsaName(level) << " len=" << len;
      for (size_t split : {size_t{0}, data.size() / 3, data.size()}) {
        const uint32_t piecewise = simd::Crc32cExtend(
            simd::Crc32c(bytes, split), bytes + split, data.size() - split);
        EXPECT_EQ(piecewise, expected)
            << simd::IsaName(level) << " len=" << len << " split=" << split;
      }
    }
  }
}

TEST_F(SimdKernelTest, RleSplatMatchesScalarAtEveryLevel) {
  // Broadcast semantics: out must equal the pattern repeated `count` times,
  // byte-identical at every dispatch level, across the vectorized widths
  // (1/2/4/8), the scalar-fallback widths (3/5/16), and tail counts around
  // the 16/32-byte block sizes.
  Rng rng(1213);
  for (size_t width : {1u, 2u, 3u, 4u, 5u, 8u, 16u}) {
    std::vector<uint8_t> pattern(width);
    for (uint8_t& b : pattern) b = static_cast<uint8_t>(rng.NextInt(0, 255));
    for (size_t count : {0u, 1u, 2u, 3u, 15u, 16u, 17u, 31u, 33u, 257u}) {
      std::vector<uint8_t> expected(width * count);
      for (size_t i = 0; i < count; ++i) {
        std::memcpy(expected.data() + i * width, pattern.data(), width);
      }
      for (Isa level : SupportedLevels()) {
        IsaGuard guard(level);
        // Canary padding proves the kernel writes exactly width*count bytes.
        std::vector<uint8_t> out(width * count + 4, 0xAB);
        simd::RleSplat(pattern.data(), width, count, out.data());
        EXPECT_EQ(std::memcmp(out.data(), expected.data(), expected.size()),
                  0)
            << simd::IsaName(level) << " width=" << width
            << " count=" << count;
        for (size_t i = expected.size(); i < out.size(); ++i) {
          EXPECT_EQ(out[i], 0xAB) << simd::IsaName(level) << " overwrite at "
                                  << i;
        }
      }
    }
  }
}

TEST_F(SimdKernelTest, MaxU32MatchesScalarAtEveryLevel) {
  Rng rng(3137);
  for (size_t n : {0u, 1u, 2u, 3u, 4u, 5u, 7u, 8u, 9u, 31u, 64u, 1000u}) {
    std::vector<uint32_t> values(n);
    for (uint32_t& v : values) {
      // Mix small values with ones above INT32_MAX: unsigned max via signed
      // compares needs the sign-bias trick, which this distribution trips.
      v = rng.NextBool(0.3)
              ? 0x80000000u + static_cast<uint32_t>(rng.NextBounded(1 << 30))
              : static_cast<uint32_t>(rng.NextBounded(1000));
    }
    uint32_t expected = 0;
    for (uint32_t v : values) expected = std::max(expected, v);
    for (Isa level : SupportedLevels()) {
      IsaGuard guard(level);
      EXPECT_EQ(simd::MaxU32(values.data(), n), expected)
          << simd::IsaName(level) << " n=" << n;
    }
  }
  // Edge values survive the bias round-trip.
  const uint32_t edge[] = {0u, UINT32_MAX, 0x7FFFFFFFu, 0x80000000u};
  for (Isa level : SupportedLevels()) {
    IsaGuard guard(level);
    EXPECT_EQ(simd::MaxU32(edge, 4), UINT32_MAX) << simd::IsaName(level);
  }
}

TEST_F(SimdKernelTest, StructuralIndexMatchesOriginalAlgorithm) {
  std::vector<std::string> inputs = {
      "",
      "{}",
      R"({"a":1})",
      R"({"a":{"b":2},"c":"x:y{z}"})",
      R"({"k\"ey":1})",                     // escaped quote in a key
      R"({"a":"\\"})",                      // escaped backslash before quote
      R"({"a":"\\\""})",                    // three backslashes: quote escaped
      R"({"a":1)",                          // unbalanced '{'
      R"({"a":1}})",                        // unbalanced '}' (early return)
      R"({"a":"unterminated)",              // unterminated string
      std::string(70, '{') + std::string(70, '}'),  // deep, crosses words
  };
  // Random mixes heavy in the structural alphabet.
  for (int trial = 0; trial < 300; ++trial) {
    inputs.push_back(RandomJsonish(1 + rng_.NextBounded(300)));
  }
  // Generated well-formed records like the warehouse produces.
  for (int trial = 0; trial < 50; ++trial) {
    std::string rec = "{";
    const size_t fields = 1 + rng_.NextBounded(6);
    for (size_t f = 0; f < fields; ++f) {
      if (f > 0) rec += ",";
      rec += "\"f" + std::to_string(f) + "\":";
      if (rng_.NextBool(0.3)) {
        rec += "{\"in\\\"ner\":" + std::to_string(rng_.NextBounded(100)) + "}";
      } else {
        rec += "\"va\\\\lue" + std::to_string(rng_.NextBounded(100)) + "\"";
      }
    }
    rec += "}";
    inputs.push_back(rec);
  }

  for (const std::string& s : inputs) {
    const RefIndex want = RefStructuralIndex(s);
    for (Isa level : SupportedLevels()) {
      IsaGuard guard(level);
      json::StructuralIndex index(s);
      EXPECT_EQ(index.malformed(), want.malformed)
          << "isa=" << simd::IsaName(level) << " input=" << s;
      ASSERT_EQ(index.colons().size(), want.colons.size())
          << "isa=" << simd::IsaName(level) << " input=" << s;
      for (size_t i = 0; i < want.colons.size(); ++i) {
        EXPECT_EQ(index.colons()[i].pos, want.colons[i].first) << "input=" << s;
        EXPECT_EQ(index.colons()[i].level, want.colons[i].second)
            << "input=" << s;
      }
    }
  }
}

TEST_F(SimdKernelTest, DomParserIsIdenticalAcrossLevels) {
  std::vector<std::string> inputs = {
      R"({"a": 1, "b": [true, null, 2.5], "s": "x\\y\"zé"})",
      R"("plain")",
      R"("esc\n\tA😀 tail")",
      R"({"long": ")" + std::string(200, 'x') + R"("})",
      R"({"bad)",            // unterminated string
      R"("trail\)",          // unterminated escape
      R"("bad\q")",          // invalid escape
      "   [1, 2,\t3]\n ",
  };
  for (const std::string& s : inputs) {
    std::string want;
    {
      IsaGuard guard(Isa::kScalar);
      auto parsed = json::ParseJson(s);
      want = parsed.ok() ? json::WriteJson(*parsed)
                         : parsed.status().ToString();
    }
    for (Isa level : SupportedLevels()) {
      IsaGuard guard(level);
      auto parsed = json::ParseJson(s);
      const std::string got = parsed.ok() ? json::WriteJson(*parsed)
                                          : parsed.status().ToString();
      EXPECT_EQ(got, want) << "isa=" << simd::IsaName(level)
                           << " input=" << s;
    }
  }
}

// ---- End-to-end: queries under each forced level ----

std::string BatchFingerprint(const storage::RecordBatch& batch) {
  std::string out;
  char buffer[64];
  for (size_t r = 0; r < batch.num_rows(); ++r) {
    for (size_t c = 0; c < batch.num_columns(); ++c) {
      const storage::ColumnVector& col = batch.column(c);
      if (col.IsNull(r)) {
        out += "NULL";
      } else {
        switch (col.type()) {
          case storage::TypeKind::kBool:
            out += col.GetBool(r) ? "true" : "false";
            break;
          case storage::TypeKind::kInt64:
            std::snprintf(buffer, sizeof(buffer), "%" PRId64, col.GetInt64(r));
            out += buffer;
            break;
          case storage::TypeKind::kDouble:
            std::snprintf(buffer, sizeof(buffer), "%.17g", col.GetDouble(r));
            out += buffer;
            break;
          case storage::TypeKind::kString:
            out += col.GetString(r);
            break;
        }
      }
      out += "|";
    }
    out += "\n";
  }
  return out;
}

std::string CounterFingerprint(const engine::QueryMetrics& m) {
  char buffer[256];
  std::snprintf(buffer, sizeof(buffer),
                "read_bytes=%llu rows=%llu groups=%llu skipped=%llu "
                "parsed=%llu parse_bytes=%llu prefiltered=%llu",
                static_cast<unsigned long long>(m.read.bytes_read),
                static_cast<unsigned long long>(m.read.rows_read),
                static_cast<unsigned long long>(m.read.row_groups_read),
                static_cast<unsigned long long>(m.read.row_groups_skipped),
                static_cast<unsigned long long>(m.parse.records_parsed),
                static_cast<unsigned long long>(m.parse.bytes_parsed),
                static_cast<unsigned long long>(m.raw_filtered_rows));
  return buffer;
}

class SimdEndToEndTest : public ::testing::Test {
 protected:
  void SetUp() override {
    root_ = (std::filesystem::temp_directory_path() /
             ("maxson_simd_e2e_" + std::to_string(::getpid())))
                .string();
    ASSERT_TRUE(storage::FileSystem::RemoveAll(root_).ok());
    workload::JsonTableSpec spec;
    spec.database = "db";
    spec.table = "t";
    spec.num_properties = 10;
    spec.avg_json_bytes = 300;
    spec.schema_variability = 0.3;
    spec.rows = 1400;
    spec.rows_per_file = 700;
    spec.rows_per_group = 100;
    spec.seed = 77;
    auto generated =
        workload::GenerateJsonTable(spec, root_ + "/warehouse", 3, &catalog_);
    ASSERT_TRUE(generated.ok()) << generated.status();
  }
  void TearDown() override {
    ASSERT_TRUE(storage::FileSystem::RemoveAll(root_).ok());
    simd::ResetIsa();
  }

  std::string root_;
  catalog::Catalog catalog_;
};

TEST_F(SimdEndToEndTest, QueriesAreByteIdenticalAcrossLevels) {
  const std::vector<std::string> queries = {
      "SELECT id, get_json_object(payload, '$.f1') FROM db.t",
      "SELECT get_json_object(payload, '$.f0') AS k, COUNT(*), "
      "AVG(length(payload)) FROM db.t GROUP BY k",
      "SELECT id FROM db.t WHERE get_json_object(payload, '$.f2') IS NOT "
      "NULL ORDER BY id LIMIT 40",
  };
  std::vector<std::string> baseline_batches;
  std::vector<std::string> baseline_counters;
  for (Isa level : SupportedLevels()) {
    core::MaxsonConfig config;
    config.cache_root = root_ + "/cache_" + simd::IsaName(level);
    config.engine.default_database = "db";
    config.engine.num_threads = 1;
    config.engine.enable_raw_filter = true;
    config.engine.force_isa = simd::IsaName(level);
    core::MaxsonSession session(&catalog_, config);
    ASSERT_EQ(session.stats().simd_isa, simd::IsaName(level));
    for (size_t q = 0; q < queries.size(); ++q) {
      auto result = session.Execute(queries[q]);
      ASSERT_TRUE(result.ok()) << "isa=" << simd::IsaName(level) << " q=" << q
                               << ": " << result.status();
      const std::string batch = BatchFingerprint(result->batch);
      const std::string counters = CounterFingerprint(result->metrics);
      if (level == Isa::kScalar) {
        baseline_batches.push_back(batch);
        baseline_counters.push_back(counters);
      } else {
        EXPECT_EQ(batch, baseline_batches[q])
            << "batch diverged at isa=" << simd::IsaName(level) << " q=" << q;
        EXPECT_EQ(counters, baseline_counters[q])
            << "counters diverged at isa=" << simd::IsaName(level)
            << " q=" << q;
      }
    }
  }
}

TEST_F(SimdEndToEndTest, UpdateConfigValidatesAndAppliesIsa) {
  core::MaxsonConfig config;
  config.cache_root = root_ + "/cache_cfg";
  config.engine.default_database = "db";
  config.engine.num_threads = 1;
  core::MaxsonSession session(&catalog_, config);

  core::SessionUpdate bad;
  bad.isa = "avx512";
  const Status rejected = session.UpdateConfig(bad);
  EXPECT_FALSE(rejected.ok());
  EXPECT_NE(rejected.ToString().find("avx512"), std::string::npos);

  core::SessionUpdate scalar;
  scalar.isa = "scalar";
  ASSERT_TRUE(session.UpdateConfig(scalar).ok());
  EXPECT_EQ(session.stats().simd_isa, "scalar");
  const std::string metrics = session.metrics().RenderPrometheus();
  EXPECT_NE(metrics.find("maxson_simd_isa_level"), std::string::npos);
  EXPECT_NE(metrics.find("maxson_simd_isa_info"), std::string::npos);

  // "auto" restores the startup policy: the MAXSON_FORCE_ISA cap when the
  // env var is set (as in CI's forced-scalar pass), best supported otherwise.
  simd::ResetIsa();
  const std::string startup_isa = simd::IsaName(simd::ActiveIsa());
  ASSERT_TRUE(session.UpdateConfig(scalar).ok());
  core::SessionUpdate back;
  back.isa = "auto";
  ASSERT_TRUE(session.UpdateConfig(back).ok());
  EXPECT_EQ(session.stats().simd_isa, startup_isa);
}

}  // namespace
}  // namespace maxson
