#include <cstdio>
#include <filesystem>

#include "catalog/catalog.h"
#include "gtest/gtest.h"

namespace maxson::catalog {
namespace {

TableInfo MakeTable(const std::string& db, const std::string& name) {
  TableInfo info;
  info.database = db;
  info.name = name;
  info.schema.AddField("mall_id", storage::TypeKind::kString);
  info.schema.AddField("date", storage::TypeKind::kInt64);
  info.schema.AddField("sale_logs", storage::TypeKind::kString);
  info.location = "/tmp/warehouse/" + db + "/" + name;
  info.last_modified = 100;
  return info;
}

TEST(CatalogTest, CreateAndLookup) {
  Catalog catalog;
  ASSERT_TRUE(catalog.CreateDatabase("mydb").ok());
  ASSERT_TRUE(catalog.CreateTable(MakeTable("mydb", "T")).ok());
  auto table = catalog.GetTable("mydb", "T");
  ASSERT_TRUE(table.ok());
  EXPECT_EQ((*table)->QualifiedName(), "mydb.T");
  EXPECT_EQ((*table)->schema.num_fields(), 3u);
  EXPECT_TRUE(catalog.HasTable("mydb", "T"));
  EXPECT_FALSE(catalog.HasTable("mydb", "absent"));
}

TEST(CatalogTest, DuplicateDetection) {
  Catalog catalog;
  ASSERT_TRUE(catalog.CreateDatabase("db").ok());
  EXPECT_EQ(catalog.CreateDatabase("db").code(), StatusCode::kAlreadyExists);
  ASSERT_TRUE(catalog.CreateTable(MakeTable("db", "t")).ok());
  EXPECT_EQ(catalog.CreateTable(MakeTable("db", "t")).code(),
            StatusCode::kAlreadyExists);
}

TEST(CatalogTest, TableRequiresDatabase) {
  Catalog catalog;
  EXPECT_EQ(catalog.CreateTable(MakeTable("nodb", "t")).code(),
            StatusCode::kNotFound);
}

TEST(CatalogTest, DropTable) {
  Catalog catalog;
  ASSERT_TRUE(catalog.CreateDatabase("db").ok());
  ASSERT_TRUE(catalog.CreateTable(MakeTable("db", "t")).ok());
  ASSERT_TRUE(catalog.DropTable("db", "t").ok());
  EXPECT_FALSE(catalog.HasTable("db", "t"));
  EXPECT_EQ(catalog.DropTable("db", "t").code(), StatusCode::kNotFound);
}

TEST(CatalogTest, TouchAdvancesModificationTime) {
  Catalog catalog;
  ASSERT_TRUE(catalog.CreateDatabase("db").ok());
  ASSERT_TRUE(catalog.CreateTable(MakeTable("db", "t")).ok());
  ASSERT_TRUE(catalog.TouchTable("db", "t", 555).ok());
  EXPECT_EQ((*catalog.GetTable("db", "t"))->last_modified, 555);
  EXPECT_EQ(catalog.TouchTable("db", "missing", 1).code(),
            StatusCode::kNotFound);
}

TEST(CatalogTest, ListTablesFiltersByDatabase) {
  Catalog catalog;
  ASSERT_TRUE(catalog.CreateDatabase("a").ok());
  ASSERT_TRUE(catalog.CreateDatabase("b").ok());
  ASSERT_TRUE(catalog.CreateTable(MakeTable("a", "t1")).ok());
  ASSERT_TRUE(catalog.CreateTable(MakeTable("a", "t2")).ok());
  ASSERT_TRUE(catalog.CreateTable(MakeTable("b", "t3")).ok());
  EXPECT_EQ(catalog.ListTables("a").size(), 2u);
  EXPECT_EQ(catalog.ListTables("b").size(), 1u);
  EXPECT_EQ(catalog.ListDatabases().size(), 2u);
}

TEST(CatalogTest, JsonRoundTrip) {
  Catalog catalog;
  ASSERT_TRUE(catalog.CreateDatabase("mydb").ok());
  ASSERT_TRUE(catalog.CreateTable(MakeTable("mydb", "T")).ok());
  ASSERT_TRUE(catalog.TouchTable("mydb", "T", 777).ok());

  auto restored = Catalog::FromJson(catalog.ToJson());
  ASSERT_TRUE(restored.ok()) << restored.status();
  EXPECT_TRUE(restored->HasDatabase("mydb"));
  auto table = restored->GetTable("mydb", "T");
  ASSERT_TRUE(table.ok());
  EXPECT_EQ((*table)->last_modified, 777);
  EXPECT_EQ((*table)->schema, MakeTable("mydb", "T").schema);
  EXPECT_EQ((*table)->location, MakeTable("mydb", "T").location);
}

TEST(CatalogTest, SaveAndLoad) {
  const std::string path =
      (std::filesystem::temp_directory_path() /
       ("maxson_catalog_" + std::to_string(::getpid()) + ".json"))
          .string();
  Catalog catalog;
  ASSERT_TRUE(catalog.CreateDatabase("db").ok());
  ASSERT_TRUE(catalog.CreateTable(MakeTable("db", "t")).ok());
  ASSERT_TRUE(catalog.Save(path).ok());
  auto loaded = Catalog::Load(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_TRUE(loaded->HasTable("db", "t"));
  std::filesystem::remove(path);
}

TEST(CatalogTest, FromJsonRejectsGarbage) {
  EXPECT_FALSE(Catalog::FromJson("not json").ok());
  EXPECT_FALSE(Catalog::FromJson("[]").ok());
  EXPECT_FALSE(Catalog::FromJson("{}").ok());
}

}  // namespace
}  // namespace maxson::catalog
