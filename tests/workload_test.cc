#include <algorithm>
#include <filesystem>
#include <set>

#include "catalog/catalog.h"
#include "engine/engine.h"
#include "gtest/gtest.h"
#include "json/dom_parser.h"
#include "storage/file_system.h"
#include "workload/data_generator.h"
#include "workload/query_templates.h"
#include "workload/trace.h"
#include "workload/trace_generator.h"
#include "workload/workload_stats.h"

namespace maxson::workload {
namespace {

class TraceTest : public ::testing::Test {
 protected:
  static const Trace& SharedTrace() {
    static Trace* trace = new Trace(GenerateTrace(TraceGeneratorConfig{}));
    return *trace;
  }
};

TEST_F(TraceTest, GeneratesNonTrivialVolume) {
  const Trace& trace = SharedTrace();
  EXPECT_GT(trace.queries.size(), 10000u);
  EXPECT_EQ(trace.num_days, 60);
  EXPECT_EQ(trace.updates.size(), 60u * 60u);  // per table per day
}

TEST_F(TraceTest, DeterministicInSeed) {
  TraceGeneratorConfig config;
  config.num_days = 10;
  config.num_users = 5;
  const Trace a = GenerateTrace(config);
  const Trace b = GenerateTrace(config);
  ASSERT_EQ(a.queries.size(), b.queries.size());
  for (size_t i = 0; i < a.queries.size(); ++i) {
    EXPECT_EQ(a.queries[i].query_id, b.queries[i].query_id);
    EXPECT_EQ(a.queries[i].date, b.queries[i].date);
    ASSERT_EQ(a.queries[i].paths.size(), b.queries[i].paths.size());
  }
}

TEST_F(TraceTest, RecurrenceSharesMatchPaper) {
  const RecurrenceSummary recurrence = SummarizeRecurrence(SharedTrace());
  // Paper: 82% recurring; 71% daily, 17% weekly among recurring.
  EXPECT_NEAR(recurrence.recurring_fraction, 0.82, 0.05);
  EXPECT_NEAR(recurrence.daily_fraction, 0.71, 0.08);
  EXPECT_NEAR(recurrence.weekly_fraction, 0.17, 0.08);
}

TEST_F(TraceTest, PowerLawMatchesPaperShape) {
  const auto counts = PathQueryCounts(SharedTrace());
  ASSERT_GT(counts.size(), 100u);
  // Sorted descending.
  for (size_t i = 1; i < counts.size(); ++i) {
    EXPECT_GE(counts[i - 1].query_count, counts[i].query_count);
  }
  const PowerLawSummary power = SummarizePowerLaw(counts, 0.27);
  // Paper: 89% of traffic on 27% of the paths. Accept a generous band —
  // the shape, not the digit, is the claim.
  EXPECT_GT(power.traffic_share, 0.75);
  // Paper: each JSONPath requested by ~14 queries on average (we only need
  // "well above 1", i.e. heavy reuse).
  EXPECT_GT(power.mean_queries_per_path, 5.0);
}

TEST_F(TraceTest, DuplicateParseShareIsHigh) {
  // Paper: over 89% of parsing traffic is repetitive.
  EXPECT_GT(DuplicateParseTrafficShare(SharedTrace()), 0.8);
}

TEST_F(TraceTest, UpdatesPeakNearNoonAndRareAtMidnight) {
  const auto histogram = UpdateHourHistogram(SharedTrace());
  const uint64_t noon = histogram[12] + histogram[13];
  const uint64_t midnight = histogram[0] + histogram[23] + histogram[1];
  EXPECT_GT(noon, midnight * 3);
  const size_t peak_hour = static_cast<size_t>(
      std::max_element(histogram.begin(), histogram.end()) -
      histogram.begin());
  EXPECT_GE(peak_hour, 10u);
  EXPECT_LE(peak_hour, 15u);
}

TEST_F(TraceTest, QueriesSortedForReplay) {
  const Trace& trace = SharedTrace();
  for (size_t i = 1; i < trace.queries.size(); ++i) {
    const QueryRecord& prev = trace.queries[i - 1];
    const QueryRecord& cur = trace.queries[i];
    EXPECT_LE(prev.date, cur.date);
    if (prev.date == cur.date) {
      EXPECT_LE(prev.hour, cur.hour);
    }
  }
}

TEST_F(TraceTest, DailyCountsConsistentWithQueries) {
  TraceGeneratorConfig config;
  config.num_days = 5;
  config.num_users = 4;
  config.templates_per_user = 3;
  config.adhoc_queries_per_day = 2;
  const Trace trace = GenerateTrace(config);
  const DailyPathCounts counts = CollectDailyCounts(trace);
  uint64_t total_from_counts = 0;
  for (const auto& [key, days] : counts) {
    ASSERT_EQ(days.size(), 5u);
    for (int c : days) total_from_counts += static_cast<uint64_t>(c);
  }
  uint64_t total_from_queries = 0;
  for (const QueryRecord& q : trace.queries) {
    total_from_queries += q.paths.size();
  }
  EXPECT_EQ(total_from_counts, total_from_queries);
}

TEST(DataGeneratorTest, RecordsAreValidJsonWithExpectedFields) {
  JsonTableSpec spec;
  spec.table = "x";
  spec.num_properties = 17;
  spec.nesting_level = 1;
  spec.avg_json_bytes = 600;
  for (uint64_t row = 0; row < 50; ++row) {
    const std::string text = GenerateJsonRecord(spec, row);
    auto parsed = json::ParseJson(text);
    ASSERT_TRUE(parsed.ok()) << parsed.status() << "\n" << text;
    ASSERT_TRUE(parsed->is_object());
    const json::JsonValue* f0 = parsed->Find("f0");
    ASSERT_NE(f0, nullptr);
    EXPECT_EQ(f0->int_value(), static_cast<int64_t>(row));
    const json::JsonValue* f1 = parsed->Find("f1");
    ASSERT_NE(f1, nullptr);
    EXPECT_EQ(f1->string_value(), "cat" + std::to_string(row % 10));
  }
}

TEST(DataGeneratorTest, NestedRecordsReachRequestedDepth) {
  JsonTableSpec spec;
  spec.table = "x";
  spec.num_properties = 30;
  spec.nesting_level = 4;
  spec.avg_json_bytes = 1500;
  const std::string text = GenerateJsonRecord(spec, 3);
  auto parsed = json::ParseJson(text);
  ASSERT_TRUE(parsed.ok());
  // f3 is a nested slot: f3.n0.n1.n2.leaf exists at depth 4.
  const json::JsonValue* node = parsed->Find("f3");
  ASSERT_NE(node, nullptr) << text;
  for (int d = 0; d < 3; ++d) {
    node = node->Find("n" + std::to_string(d));
    ASSERT_NE(node, nullptr) << text;
  }
  EXPECT_NE(node->Find("leaf"), nullptr);
}

TEST(DataGeneratorTest, AverageSizeNearTarget) {
  JsonTableSpec spec;
  spec.table = "x";
  spec.num_properties = 17;
  spec.avg_json_bytes = 2000;
  uint64_t total = 0;
  const int n = 200;
  for (int i = 0; i < n; ++i) {
    total += GenerateJsonRecord(spec, static_cast<uint64_t>(i)).size();
  }
  const double avg = static_cast<double>(total) / n;
  EXPECT_GT(avg, 1500.0);
  EXPECT_LT(avg, 2600.0);
}

TEST(DataGeneratorTest, SchemaVariabilityChangesFieldOrder) {
  JsonTableSpec stable;
  stable.table = "x";
  stable.num_properties = 10;
  stable.schema_variability = 0.0;
  JsonTableSpec variable = stable;
  variable.schema_variability = 1.0;
  variable.seed = stable.seed;

  // Stable spec: f0 always leads. Variable spec: order shuffles sometimes.
  bool any_different_prefix = false;
  for (uint64_t row = 0; row < 30; ++row) {
    const std::string a = GenerateJsonRecord(stable, row);
    EXPECT_EQ(a.find("\"f0\""), 1u) << a;
    const std::string b = GenerateJsonRecord(variable, row);
    if (b.find("\"f0\"") != 1u) any_different_prefix = true;
  }
  EXPECT_TRUE(any_different_prefix);
}

TEST(DataGeneratorTest, GeneratedTableIsQueryable) {
  const std::string warehouse =
      (std::filesystem::temp_directory_path() /
       ("maxson_workload_test_" + std::to_string(::getpid())))
          .string();
  catalog::Catalog catalog;
  JsonTableSpec spec;
  spec.database = "mydb";
  spec.table = "gen";
  spec.rows = 500;
  spec.rows_per_file = 200;
  spec.rows_per_group = 50;
  auto table = GenerateJsonTable(spec, warehouse, 3, &catalog);
  ASSERT_TRUE(table.ok()) << table.status();
  EXPECT_EQ(table->rows, 500u);

  engine::QueryEngine engine(&catalog, engine::EngineConfig{});
  auto result = engine.Execute(
      "SELECT COUNT(*) AS n FROM mydb.gen WHERE "
      "to_int(get_json_object(payload, '$.f0')) < 100");
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->batch.column(0).GetValue(0).int64_value(), 100);
  ASSERT_TRUE(storage::FileSystem::RemoveAll(warehouse).ok());
}

TEST(QueryTemplatesTest, TableIIShapesMatchPaper) {
  BenchmarkSuiteOptions options;
  const auto queries = MakeTableIIQueries(options);
  ASSERT_EQ(queries.size(), 10u);
  EXPECT_EQ(queries[0].name, "Q1");
  EXPECT_EQ(queries[0].table_spec.num_properties, 11);
  EXPECT_EQ(queries[5].name, "Q6");
  EXPECT_EQ(queries[5].table_spec.nesting_level, 5);
  EXPECT_EQ(queries[8].table_spec.avg_json_bytes, 21459);
  // Q2 and Q9 carry JSON predicates (Fig. 12 targets).
  EXPECT_TRUE(queries[1].has_json_predicate);
  EXPECT_TRUE(queries[8].has_json_predicate);
  EXPECT_FALSE(queries[0].has_json_predicate);
  // JSONPath counts follow Table II.
  EXPECT_EQ(queries[3].paths.size(), 1u);   // Q4
  EXPECT_EQ(queries[8].paths.size(), 1u);   // Q9
  EXPECT_EQ(queries[5].paths.size(), 29u);  // Q6
}

TEST(QueryTemplatesTest, QueriesParseAndRowCountsScaleWithSize) {
  BenchmarkSuiteOptions options;
  const auto queries = MakeTableIIQueries(options);
  for (const BenchmarkQuery& q : queries) {
    EXPECT_FALSE(q.sql.empty());
    EXPECT_GE(q.table_spec.rows, 2000u);
  }
  // Bigger documents -> fewer rows under the fixed byte budget.
  EXPECT_GT(queries[0].table_spec.rows, queries[8].table_spec.rows);
}

TEST(QueryTemplatesTest, GeneratedSuiteExecutesEndToEnd) {
  // Generate a miniature version of the suite and execute Q1/Q2/Q9.
  const std::string warehouse =
      (std::filesystem::temp_directory_path() /
       ("maxson_suite_test_" + std::to_string(::getpid())))
          .string();
  BenchmarkSuiteOptions options;
  options.bytes_per_table = 200 << 10;  // 200 KiB per table: fast
  options.max_rows = 1500;
  options.rows_per_file = 600;
  options.rows_per_group = 100;
  auto queries = MakeTableIIQueries(options);
  catalog::Catalog catalog;
  ASSERT_TRUE(
      GenerateBenchmarkTables(queries, warehouse, options, &catalog).ok());

  engine::QueryEngine engine(&catalog, engine::EngineConfig{});
  for (const char* name : {"Q1", "Q2", "Q9"}) {
    const auto it =
        std::find_if(queries.begin(), queries.end(),
                     [&](const BenchmarkQuery& q) { return q.name == name; });
    ASSERT_NE(it, queries.end());
    auto result = engine.Execute(it->sql);
    ASSERT_TRUE(result.ok()) << name << ": " << result.status();
    EXPECT_GT(result->metrics.parse.records_parsed, 0u) << name;
  }
  ASSERT_TRUE(storage::FileSystem::RemoveAll(warehouse).ok());
}

}  // namespace
}  // namespace maxson::workload
