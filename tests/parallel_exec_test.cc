// Determinism and concurrency tests of the parallel execution runtime:
// Execute() must return byte-identical results at every parallelism degree
// (scan order, aggregate values including floating-point sums, and integer
// metric counters), and a midnight caching cycle racing query execution
// must never corrupt state — queries either succeed with correct rows or
// fail cleanly when the cycle deletes cache files under them.

#include <atomic>
#include <cinttypes>
#include <cstdio>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "catalog/catalog.h"
#include "core/maxson.h"
#include "gtest/gtest.h"
#include "storage/file_system.h"
#include "workload/data_generator.h"
#include "workload/query_templates.h"

namespace maxson {
namespace {

using catalog::Catalog;
using core::MaxsonConfig;
using core::MaxsonSession;
using storage::FileSystem;
using workload::JsonPathLocation;
using workload::JsonTableSpec;

/// Renders a batch (schema + every cell) into one string. Doubles use %.17g
/// so distinct IEEE-754 values render distinctly: equal strings mean
/// byte-identical results, including floating-point accumulation order.
std::string BatchFingerprint(const storage::RecordBatch& batch) {
  std::string out;
  for (size_t c = 0; c < batch.num_columns(); ++c) {
    out += batch.schema().field(c).name + "|";
  }
  out += "\n";
  char buffer[64];
  for (size_t r = 0; r < batch.num_rows(); ++r) {
    for (size_t c = 0; c < batch.num_columns(); ++c) {
      const storage::ColumnVector& col = batch.column(c);
      if (col.IsNull(r)) {
        out += "NULL";
      } else {
        switch (col.type()) {
          case storage::TypeKind::kBool:
            out += col.GetBool(r) ? "true" : "false";
            break;
          case storage::TypeKind::kInt64:
            std::snprintf(buffer, sizeof(buffer), "%" PRId64, col.GetInt64(r));
            out += buffer;
            break;
          case storage::TypeKind::kDouble:
            std::snprintf(buffer, sizeof(buffer), "%.17g", col.GetDouble(r));
            out += buffer;
            break;
          case storage::TypeKind::kString:
            out += col.GetString(r);
            break;
        }
      }
      out += "|";
    }
    out += "\n";
  }
  return out;
}

/// The integer metric counters that must be independent of the parallelism
/// degree (the *_seconds fields are wall/CPU time and naturally vary).
std::string CounterFingerprint(const engine::QueryMetrics& m) {
  char buffer[256];
  std::snprintf(buffer, sizeof(buffer),
                "read_bytes=%llu rows=%llu groups=%llu skipped=%llu "
                "parsed=%llu parse_bytes=%llu shared=%llu cache_cols=%llu "
                "prefiltered=%llu",
                static_cast<unsigned long long>(m.read.bytes_read),
                static_cast<unsigned long long>(m.read.rows_read),
                static_cast<unsigned long long>(m.read.row_groups_read),
                static_cast<unsigned long long>(m.read.row_groups_skipped),
                static_cast<unsigned long long>(m.parse.records_parsed),
                static_cast<unsigned long long>(m.parse.bytes_parsed),
                static_cast<unsigned long long>(m.shared_skips),
                static_cast<unsigned long long>(m.cache_columns_read),
                static_cast<unsigned long long>(m.raw_filtered_rows));
  return buffer;
}

class ParallelExecTest : public ::testing::Test {
 protected:
  void SetUp() override {
    root_ = (std::filesystem::temp_directory_path() /
             ("maxson_parallel_" + std::to_string(::getpid())))
                .string();
    ASSERT_TRUE(FileSystem::RemoveAll(root_).ok());
  }
  void TearDown() override { ASSERT_TRUE(FileSystem::RemoveAll(root_).ok()); }

  /// Multi-split table: 2800 rows at 700 rows/file = 4 splits, 100-row
  /// groups, with schema variability so some paths are NULL.
  void MakeTable(const std::string& table, uint64_t rows = 2800) {
    JsonTableSpec spec;
    spec.database = "db";
    spec.table = table;
    spec.num_properties = 12;
    spec.avg_json_bytes = 300;
    spec.schema_variability = 0.3;
    spec.rows = rows;
    spec.rows_per_file = 700;
    spec.rows_per_group = 100;
    spec.seed = 91;
    auto generated =
        workload::GenerateJsonTable(spec, root_ + "/warehouse", 3, &catalog_);
    ASSERT_TRUE(generated.ok()) << generated.status();
  }

  MaxsonSession MakeSession(size_t num_threads) {
    MaxsonConfig config;
    config.cache_root = root_ + "/cache_t" + std::to_string(num_threads);
    config.engine.default_database = "db";
    config.engine.num_threads = num_threads;
    config.predictor.epochs = 5;
    return MaxsonSession(&catalog_, config);
  }

  std::string root_;
  Catalog catalog_;
};

TEST_F(ParallelExecTest, ExecuteIsByteIdenticalAcrossThreadCounts) {
  MakeTable("t");
  const std::vector<std::string> queries = {
      // Plain ORDER BY-less scan: row order must follow split order.
      "SELECT id, get_json_object(payload, '$.f1') FROM db.t",
      // Filter + projection.
      "SELECT id FROM db.t WHERE get_json_object(payload, '$.f2') IS NOT "
      "NULL",
      // Aggregation with floating-point SUM/AVG: accumulation association
      // must not depend on the worker count.
      "SELECT get_json_object(payload, '$.f0') AS k, COUNT(*), "
      "SUM(length(get_json_object(payload, '$.f1'))), "
      "AVG(length(payload)) FROM db.t GROUP BY k",
      // Global aggregate.
      "SELECT COUNT(*), MIN(id), MAX(id) FROM db.t",
      // Sort over a computed key.
      "SELECT id FROM db.t ORDER BY get_json_object(payload, '$.f3') DESC, "
      "id LIMIT 50",
  };

  std::vector<std::string> baseline_batches;
  std::vector<std::string> baseline_counters;
  for (const size_t threads : {size_t{1}, size_t{4}, size_t{8}}) {
    MaxsonSession session = MakeSession(threads);
    for (size_t q = 0; q < queries.size(); ++q) {
      auto result = session.Execute(queries[q]);
      ASSERT_TRUE(result.ok())
          << "threads=" << threads << " q=" << q << ": " << result.status();
      const std::string batch = BatchFingerprint(result->batch);
      const std::string counters = CounterFingerprint(result->metrics);
      if (threads == 1) {
        baseline_batches.push_back(batch);
        baseline_counters.push_back(counters);
      } else {
        EXPECT_EQ(batch, baseline_batches[q])
            << "batch diverged at threads=" << threads << " q=" << q;
        EXPECT_EQ(counters, baseline_counters[q])
            << "counters diverged at threads=" << threads << " q=" << q;
      }
    }
  }
}

TEST_F(ParallelExecTest, CachedExecutionIsByteIdenticalAcrossThreadCounts) {
  MakeTable("t");
  const std::string query =
      "SELECT id, get_json_object(payload, '$.f0') AS a, "
      "get_json_object(payload, '$.f1') AS b FROM db.t "
      "WHERE get_json_object(payload, '$.f0') IS NOT NULL";

  std::string baseline;
  for (const size_t threads : {size_t{1}, size_t{4}, size_t{8}}) {
    MaxsonSession session = MakeSession(threads);
    // Feed history so the midnight cycle caches $.f0/$.f1, then query
    // through the rewritten (cache-reading) path.
    for (int day = 0; day < 14; ++day) {
      for (int rep = 0; rep < 3; ++rep) {
        workload::QueryRecord record;
        record.date = day;
        for (const char* path : {"$.f0", "$.f1"}) {
          JsonPathLocation loc;
          loc.database = "db";
          loc.table = "t";
          loc.column = "payload";
          loc.path = path;
          record.paths.push_back(loc);
        }
        session.RecordQuery(record);
      }
    }
    ASSERT_TRUE(session.TrainPredictor(8, 13).ok());
    auto report = session.RunMidnightCycle(14);
    ASSERT_TRUE(report.ok()) << report.status();
    ASSERT_GT(report->selected.size(), 0u);

    auto result = session.Execute(query);
    ASSERT_TRUE(result.ok()) << result.status();
    ASSERT_GT(result->metrics.cache_columns_read, 0u)
        << "query did not hit the cache at threads=" << threads;
    const std::string batch = BatchFingerprint(result->batch);
    if (threads == 1) {
      baseline = batch;
    } else {
      EXPECT_EQ(batch, baseline) << "diverged at threads=" << threads;
    }
  }
}

TEST_F(ParallelExecTest, MidnightCycleRacingQueriesIsSafe) {
  MakeTable("t", 1400);  // 2 splits: keeps the race iterations fast
  MaxsonSession session = MakeSession(4);
  for (int day = 0; day < 14; ++day) {
    for (int rep = 0; rep < 3; ++rep) {
      workload::QueryRecord record;
      record.date = day;
      JsonPathLocation loc;
      loc.database = "db";
      loc.table = "t";
      loc.column = "payload";
      loc.path = "$.f0";
      record.paths.push_back(loc);
      session.RecordQuery(record);
    }
  }
  ASSERT_TRUE(session.TrainPredictor(8, 13).ok());
  ASSERT_TRUE(session.RunMidnightCycle(14).ok());

  // Uncached truth for correctness checks of successful racing queries.
  const std::string query =
      "SELECT id, get_json_object(payload, '$.f0') FROM db.t";
  auto truth = session.ExecuteWithoutCache(query);
  ASSERT_TRUE(truth.ok()) << truth.status();
  const std::string expected = BatchFingerprint(truth->batch);

  // One thread re-runs midnight cycles (each Clear()s the registry and
  // deletes + rewrites the cache tables) while this thread hammers queries
  // whose plans rewrite against that registry.
  std::atomic<bool> stop{false};
  std::atomic<int> cycles{0};
  std::thread midnight([&] {
    int day = 15;
    while (!stop.load()) {
      auto report = session.RunMidnightCycle(day++);
      EXPECT_TRUE(report.ok()) << report.status();
      ++cycles;
    }
  });

  int ok_queries = 0;
  int failed_queries = 0;
  for (int i = 0; i < 60; ++i) {
    auto result = session.Execute(query);
    if (result.ok()) {
      // A successful execution must be correct regardless of whether it
      // read cached or raw values.
      EXPECT_EQ(BatchFingerprint(result->batch), expected) << "iteration " << i;
      ++ok_queries;
    } else {
      // The cycle deleted cache files between plan rewrite and scan: the
      // documented transient failure mode. Must be a clean Status, which
      // reaching this branch already proves.
      ++failed_queries;
    }
  }
  stop.store(true);
  midnight.join();

  EXPECT_GT(ok_queries, 0);
  EXPECT_GT(cycles.load(), 0);
  // Informational: transient failures are legal, silence unused warnings.
  (void)failed_queries;
}

}  // namespace
}  // namespace maxson
