// Observability-layer tests: the metrics registry and trace recorder units,
// EXPLAIN's golden rendering, EXPLAIN ANALYZE's per-operator annotations,
// and the determinism contract — counter totals published by a session must
// be byte-identical at every parallelism degree, cached and uncached.

#include <cstdio>
#include <filesystem>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "catalog/catalog.h"
#include "core/maxson.h"
#include "gtest/gtest.h"
#include "obs/metrics_registry.h"
#include "obs/trace.h"
#include "storage/file_system.h"
#include "workload/data_generator.h"

namespace maxson {
namespace {

using catalog::Catalog;
using core::MaxsonConfig;
using core::MaxsonSession;
using obs::Counter;
using obs::Histogram;
using obs::LabelSet;
using obs::MetricsRegistry;
using obs::TraceRecorder;
using obs::TraceSpan;
using storage::FileSystem;
using workload::JsonPathLocation;
using workload::JsonTableSpec;

// ---- registry units ----

TEST(MetricsRegistryTest, CountersAreSharedByNameAndLabels) {
  MetricsRegistry registry;
  Counter* a = registry.GetCounter("requests_total");
  a->Increment();
  a->Increment(4);
  // Same (name, labels) → same series.
  EXPECT_EQ(registry.GetCounter("requests_total"), a);
  EXPECT_EQ(a->value(), 5u);
  // A label distinguishes the series.
  Counter* labeled =
      registry.GetCounter("requests_total", {{"path", "$.f0"}});
  EXPECT_NE(labeled, a);
  labeled->Increment(2);
  EXPECT_EQ(a->value(), 5u);
  EXPECT_EQ(labeled->value(), 2u);
}

TEST(MetricsRegistryTest, CounterTotalsListsCountersOnly) {
  MetricsRegistry registry;
  registry.GetCounter("rows_total")->Increment(7);
  registry.GetCounter("rows_total", {{"table", "t"}})->Increment(3);
  registry.GetGauge("pool_threads")->Set(8);
  registry.GetHistogram("latency_seconds", {0.1, 1.0})->Observe(0.5);
  const std::map<std::string, uint64_t> totals = registry.CounterTotals();
  ASSERT_EQ(totals.size(), 2u);
  EXPECT_EQ(totals.at("rows_total"), 7u);
  EXPECT_EQ(totals.at("rows_total{table=\"t\"}"), 3u);
}

TEST(MetricsRegistryTest, HistogramCumulativeBuckets) {
  Histogram histogram({0.001, 0.01, 0.1});
  histogram.Observe(0.0005);  // first bucket
  histogram.Observe(0.05);    // third bucket
  histogram.Observe(5.0);     // +Inf only
  EXPECT_EQ(histogram.count(), 3u);
  EXPECT_DOUBLE_EQ(histogram.sum(), 0.0005 + 0.05 + 5.0);
  const std::vector<uint64_t> cumulative = histogram.CumulativeCounts();
  ASSERT_EQ(cumulative.size(), 3u);
  EXPECT_EQ(cumulative[0], 1u);
  EXPECT_EQ(cumulative[1], 1u);
  EXPECT_EQ(cumulative[2], 2u);
}

TEST(MetricsRegistryTest, PrometheusRendering) {
  MetricsRegistry registry;
  registry.GetCounter("maxson_queries_total")->Increment(2);
  registry.GetCounter("maxson_rewrite_hits_total", {{"path", "$.f0"}})
      ->Increment();
  registry.GetGauge("maxson_cache_entries")->Set(3);
  registry.GetHistogram("maxson_query_seconds", {0.1})->Observe(0.05);
  const std::string text = registry.RenderPrometheus();
  EXPECT_NE(text.find("# TYPE maxson_queries_total counter"),
            std::string::npos);
  EXPECT_NE(text.find("maxson_queries_total 2"), std::string::npos);
  EXPECT_NE(text.find("maxson_rewrite_hits_total{path=\"$.f0\"} 1"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE maxson_cache_entries gauge"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE maxson_query_seconds histogram"),
            std::string::npos);
  EXPECT_NE(text.find("maxson_query_seconds_bucket{le=\"+Inf\"} 1"),
            std::string::npos);
  EXPECT_NE(text.find("maxson_query_seconds_count 1"), std::string::npos);
}

// ---- trace units ----

TEST(TraceTest, DisabledRecorderRecordsNothing) {
  TraceRecorder recorder;
  { TraceSpan span(&recorder, "scan", "query"); }
  EXPECT_EQ(recorder.size(), 0u);
}

TEST(TraceTest, EnabledSpansAppearInChromeTraceJson) {
  TraceRecorder recorder;
  recorder.set_enabled(true);
  { TraceSpan span(&recorder, "execute", "query"); }
  { TraceSpan span(&recorder, "midnight.cache", "midnight"); }
  ASSERT_EQ(recorder.size(), 2u);
  const auto events = recorder.Snapshot();
  EXPECT_EQ(events[0].name, "execute");
  EXPECT_EQ(events[1].category, "midnight");
  const std::string json = recorder.ToChromeTraceJson();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"X\""), std::string::npos);
  EXPECT_NE(json.find("\"midnight.cache\""), std::string::npos);
  recorder.Clear();
  EXPECT_EQ(recorder.size(), 0u);
  EXPECT_TRUE(recorder.enabled());
}

// ---- EXPLAIN / determinism over a real warehouse ----

class ObsQueryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    root_ = (std::filesystem::temp_directory_path() /
             ("maxson_obs_" + std::to_string(::getpid())))
                .string();
    ASSERT_TRUE(FileSystem::RemoveAll(root_).ok());
    JsonTableSpec spec;
    spec.database = "db";
    spec.table = "t";
    spec.num_properties = 8;
    spec.avg_json_bytes = 250;
    spec.schema_variability = 0.2;
    spec.rows = 1400;
    spec.rows_per_file = 700;
    spec.rows_per_group = 100;
    spec.seed = 17;
    auto generated =
        workload::GenerateJsonTable(spec, root_ + "/warehouse", 3, &catalog_);
    ASSERT_TRUE(generated.ok()) << generated.status();
  }
  void TearDown() override { ASSERT_TRUE(FileSystem::RemoveAll(root_).ok()); }

  /// A session with a private metrics registry so counter totals can be
  /// compared across sessions in isolation.
  MaxsonSession MakeSession(size_t num_threads, MetricsRegistry* registry) {
    MaxsonConfig config;
    config.cache_root = root_ + "/cache_t" + std::to_string(num_threads);
    config.engine.default_database = "db";
    config.engine.num_threads = num_threads;
    config.predictor.epochs = 5;
    config.metrics = registry;
    return MaxsonSession(&catalog_, config);
  }

  /// Records 14 days of history over $.f0/$.f1 and runs the midnight cycle
  /// so those paths land in the cache.
  void WarmCache(MaxsonSession* session) {
    for (int day = 0; day < 14; ++day) {
      for (int rep = 0; rep < 3; ++rep) {
        workload::QueryRecord record;
        record.date = day;
        for (const char* path : {"$.f0", "$.f1"}) {
          JsonPathLocation loc;
          loc.database = "db";
          loc.table = "t";
          loc.column = "payload";
          loc.path = path;
          record.paths.push_back(loc);
        }
        session->RecordQuery(record);
      }
    }
    ASSERT_TRUE(session->TrainPredictor(8, 13).ok());
    auto report = session->RunMidnightCycle(14);
    ASSERT_TRUE(report.ok()) << report.status();
    ASSERT_GT(report->selected.size(), 0u);
  }

  /// Joins the one-column "plan" result batch back into one text block.
  static std::string PlanText(const storage::RecordBatch& batch) {
    std::string text;
    for (size_t r = 0; r < batch.num_rows(); ++r) {
      text += batch.column(0).GetString(r);
      text += "\n";
    }
    return text;
  }

  std::string root_;
  Catalog catalog_;
};

TEST_F(ObsQueryTest, ExplainRendersGoldenTree) {
  MetricsRegistry registry;
  MaxsonSession session = MakeSession(1, &registry);
  auto result = session.Execute(
      "EXPLAIN SELECT id FROM db.t WHERE id < 100 ORDER BY id DESC LIMIT "
      "10");
  ASSERT_TRUE(result.ok()) << result.status();
  const std::string expected =
      "Limit (10)\n"
      "+- Sort (id DESC)\n"
      "   +- Project (id)\n"
      "      +- Filter ((id < 100))\n"
      "         +- Scan t (columns: id; sarg: id < 100)\n"
      "\n"
      "cache: hits=0 misses=0 fallbacks=0\n";
  EXPECT_EQ(PlanText(result->batch), expected);
}

TEST_F(ObsQueryTest, ExplainAnalyzeShowsOperatorStatsAndCacheHits) {
  MetricsRegistry registry;
  MaxsonSession session = MakeSession(4, &registry);
  WarmCache(&session);
  auto result = session.Execute(
      "EXPLAIN ANALYZE SELECT id, get_json_object(payload, '$.f0') AS a "
      "FROM db.t WHERE get_json_object(payload, '$.f1') IS NOT NULL");
  ASSERT_TRUE(result.ok()) << result.status();
  const std::string text = PlanText(result->batch);
  // Per-operator runtime annotations on every level of the tree.
  EXPECT_NE(text.find("Project (id, a) [rows_in="), std::string::npos)
      << text;
  EXPECT_NE(text.find("Filter ("), std::string::npos) << text;
  EXPECT_NE(text.find("+- Scan t ("), std::string::npos) << text;
  EXPECT_NE(text.find(" splits=2"), std::string::npos) << text;
  EXPECT_NE(text.find(" wall="), std::string::npos) << text;
  // The rewrite hit both cached paths; the footer must say so (the
  // acceptance criterion: nonzero cache-hit counters on a cached query).
  EXPECT_NE(text.find("cache: hits=2 misses=0 fallbacks=0"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("read: bytes="), std::string::npos) << text;
  EXPECT_NE(text.find("time: plan="), std::string::npos) << text;
  // The same hits are published as labeled registry counters.
  const auto totals = registry.CounterTotals();
  uint64_t rewrite_hits = 0;
  for (const auto& [key, value] : totals) {
    if (key.rfind("maxson_rewrite_hits_total", 0) == 0) rewrite_hits += value;
  }
  EXPECT_GE(rewrite_hits, 2u);
}

TEST_F(ObsQueryTest, CounterTotalsIdenticalAcrossThreadCounts) {
  const std::vector<std::string> queries = {
      "SELECT id, get_json_object(payload, '$.f0') FROM db.t",
      "SELECT get_json_object(payload, '$.f0') AS k, COUNT(*) FROM db.t "
      "GROUP BY k",
      "SELECT id FROM db.t WHERE get_json_object(payload, '$.f1') IS NOT "
      "NULL ORDER BY id LIMIT 25",
  };

  // Uncached: no history, every rewrite misses.
  std::map<std::string, uint64_t> uncached_baseline;
  for (const size_t threads : {size_t{1}, size_t{4}, size_t{8}}) {
    auto registry = std::make_unique<MetricsRegistry>();
    MaxsonSession session = MakeSession(threads, registry.get());
    for (const std::string& sql : queries) {
      auto result = session.Execute(sql);
      ASSERT_TRUE(result.ok()) << result.status();
    }
    const auto totals = registry->CounterTotals();
    if (threads == 1) {
      uncached_baseline = totals;
      EXPECT_GT(totals.at("maxson_queries_total"), 0u);
    } else {
      EXPECT_EQ(totals, uncached_baseline)
          << "uncached counter totals diverged at threads=" << threads;
    }
  }

  // Cached: midnight cycle then the same queries through the cache, plus an
  // EXPLAIN ANALYZE whose rendered row count must also be stable.
  std::map<std::string, uint64_t> cached_baseline;
  size_t analyze_rows_baseline = 0;
  for (const size_t threads : {size_t{1}, size_t{4}, size_t{8}}) {
    auto registry = std::make_unique<MetricsRegistry>();
    MaxsonSession session = MakeSession(threads, registry.get());
    WarmCache(&session);
    for (const std::string& sql : queries) {
      auto result = session.Execute(sql);
      ASSERT_TRUE(result.ok()) << result.status();
    }
    auto analyzed = session.Execute(
        "EXPLAIN ANALYZE SELECT get_json_object(payload, '$.f0') AS k, "
        "COUNT(*) FROM db.t GROUP BY k");
    ASSERT_TRUE(analyzed.ok()) << analyzed.status();
    const auto totals = registry->CounterTotals();
    if (threads == 1) {
      cached_baseline = totals;
      analyze_rows_baseline = analyzed->batch.num_rows();
      EXPECT_GT(totals.at("maxson_midnight_paths_cached_total"), 0u);
    } else {
      EXPECT_EQ(totals, cached_baseline)
          << "cached counter totals diverged at threads=" << threads;
      EXPECT_EQ(analyzed->batch.num_rows(), analyze_rows_baseline)
          << "EXPLAIN ANALYZE row count diverged at threads=" << threads;
    }
  }
}

TEST_F(ObsQueryTest, UpdateConfigValidatesAndApplies) {
  MetricsRegistry registry;
  MaxsonSession session = MakeSession(2, &registry);

  core::SessionUpdate bad;
  bad.num_threads = 100000;
  EXPECT_FALSE(session.UpdateConfig(bad).ok());
  // A rejected update leaves the session untouched.
  EXPECT_EQ(session.pool().num_threads(), 2u);

  core::SessionUpdate update;
  update.num_threads = 3;
  update.tracing = true;
  update.cache_budget_bytes = 1ull << 20;
  ASSERT_TRUE(session.UpdateConfig(update).ok());
  EXPECT_EQ(session.pool().num_threads(), 3u);
  EXPECT_TRUE(session.tracer().enabled());
  EXPECT_EQ(session.config().cache_budget_bytes, 1ull << 20);

  // Tracing on: a query records spans; a dump has them.
  auto result = session.Execute("SELECT id FROM db.t LIMIT 5");
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_GT(session.stats().trace_events, 0u);
  EXPECT_NE(session.tracer().ToChromeTraceJson().find("\"execute\""),
            std::string::npos);
  session.ClearTrace();
  EXPECT_EQ(session.stats().trace_events, 0u);
}

}  // namespace
}  // namespace maxson
