// Tests for the serving layer: admission control edge cases (zero
// capacity, bounded-queue overflow, shutdown drain), the semantic result
// cache through MaxsonServer (repeat hits, equivalent-form hits, permuted
// projections, registry-version invalidation), metrics, and correctness
// under concurrent clients racing cache invalidation. Also named in the
// TSan stage of tools/ci.sh.

#include "serve/server.h"

#include <atomic>
#include <chrono>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "catalog/catalog.h"
#include "engine/fingerprint.h"
#include "gtest/gtest.h"
#include "serve/admission.h"
#include "serve/result_cache.h"
#include "storage/corc_writer.h"
#include "storage/file_system.h"

namespace maxson::serve {
namespace {

using storage::FileSystem;
using storage::Schema;
using storage::TypeKind;
using storage::Value;

// ---------------------------------------------------------------------------
// Admission control edge cases (satellite: typed rejection, never blocks
// forever, drain on shutdown).
// ---------------------------------------------------------------------------

TEST(AdmissionControllerTest, ZeroCapacityTenantRejectsImmediately) {
  AdmissionController admission(TenantLimits{4, 16});
  admission.SetTenantLimits("freeloader", TenantLimits{0, 16});
  auto ticket = admission.Admit("freeloader");
  ASSERT_FALSE(ticket.ok());
  EXPECT_TRUE(ticket.status().IsResourceExhausted()) << ticket.status();
  EXPECT_EQ(admission.Snapshot("freeloader").rejected, 1u);
}

TEST(AdmissionControllerTest, QueueOverflowRejectsWithTypedStatus) {
  AdmissionController admission(TenantLimits{1, 0});
  auto first = admission.Admit("t");
  ASSERT_TRUE(first.ok()) << first.status();
  // Slot busy and zero queue capacity: the second caller must get a typed
  // failure immediately, not block.
  auto second = admission.Admit("t");
  ASSERT_FALSE(second.ok());
  EXPECT_TRUE(second.status().IsResourceExhausted()) << second.status();
}

TEST(AdmissionControllerTest, BoundedQueueAdmitsInOrderAndRejectsOverflow) {
  AdmissionController admission(TenantLimits{1, 1});
  auto first = admission.Admit("t");
  ASSERT_TRUE(first.ok());

  std::atomic<bool> waiter_admitted{false};
  std::thread waiter([&admission, &waiter_admitted] {
    auto ticket = admission.Admit("t");  // takes the one queue slot
    EXPECT_TRUE(ticket.ok()) << ticket.status();
    waiter_admitted.store(true);
  });
  while (admission.Snapshot("t").queued < 1) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }

  // Queue full now: a third caller overflows and fails fast.
  auto overflow = admission.Admit("t");
  ASSERT_FALSE(overflow.ok());
  EXPECT_TRUE(overflow.status().IsResourceExhausted());
  EXPECT_FALSE(waiter_admitted.load());

  first->Release();  // frees the slot; the queued waiter takes it
  waiter.join();
  EXPECT_TRUE(waiter_admitted.load());
  const auto snapshot = admission.Snapshot("t");
  EXPECT_EQ(snapshot.admitted, 2u);
  EXPECT_EQ(snapshot.rejected, 1u);
}

TEST(AdmissionControllerTest, ShutdownRejectsQueuedAndDrainsInFlight) {
  AdmissionController admission(TenantLimits{1, 4});
  auto in_flight = admission.Admit("t");
  ASSERT_TRUE(in_flight.ok());

  std::atomic<bool> queued_rejected{false};
  std::thread queued([&admission, &queued_rejected] {
    auto ticket = admission.Admit("t");
    EXPECT_FALSE(ticket.ok());
    EXPECT_TRUE(ticket.status().IsResourceExhausted());
    queued_rejected.store(true);
  });
  while (admission.Snapshot("t").queued < 1) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }

  std::atomic<bool> shutdown_done{false};
  std::thread shutdown([&admission, &shutdown_done] {
    admission.Shutdown();  // blocks until the in-flight ticket releases
    shutdown_done.store(true);
  });
  queued.join();  // queued waiter is rejected without waiting for drain
  EXPECT_TRUE(queued_rejected.load());
  EXPECT_FALSE(shutdown_done.load());
  EXPECT_EQ(admission.TotalInFlight(), 1u);

  in_flight->Release();
  shutdown.join();
  EXPECT_TRUE(shutdown_done.load());
  EXPECT_EQ(admission.TotalInFlight(), 0u);

  // Everything after shutdown is rejected with the same typed status.
  auto late = admission.Admit("t");
  ASSERT_FALSE(late.ok());
  EXPECT_TRUE(late.status().IsResourceExhausted());
}

// ---------------------------------------------------------------------------
// ResultCache unit behavior.
// ---------------------------------------------------------------------------

storage::RecordBatch OneCellBatch(int64_t v) {
  Schema schema;
  schema.AddField("id", TypeKind::kInt64);
  storage::RecordBatch batch(schema);
  batch.AppendRow({Value::Int64(v)});
  return batch;
}

TEST(ResultCacheTest, EvictsLeastRecentlyUsedPastEntryBudget) {
  ResultCache cache(ResultCacheConfig{2, 64ull << 20});
  ResultValidity validity;
  std::vector<CanonicalQuery> queries;
  for (int i = 0; i < 3; ++i) {
    auto q = Canonicalize("SELECT id FROM db.t WHERE id = " +
                          std::to_string(i));
    ASSERT_TRUE(q.ok());
    queries.push_back(*q);
  }
  cache.Insert(queries[0], OneCellBatch(0), validity);
  cache.Insert(queries[1], OneCellBatch(1), validity);
  ASSERT_TRUE(cache.Lookup(queries[0], validity).has_value());  // 0 is MRU
  cache.Insert(queries[2], OneCellBatch(2), validity);          // evicts 1
  EXPECT_TRUE(cache.Lookup(queries[0], validity).has_value());
  EXPECT_FALSE(cache.Lookup(queries[1], validity).has_value());
  EXPECT_TRUE(cache.Lookup(queries[2], validity).has_value());
  const auto stats = cache.GetStats();
  EXPECT_EQ(stats.entries, 2u);
  EXPECT_EQ(stats.evictions, 1u);
}

TEST(ResultCacheTest, ValidityDriftEvictsAndCountsInvalidation) {
  ResultCache cache(ResultCacheConfig{});
  auto q = Canonicalize("SELECT id FROM db.t");
  ASSERT_TRUE(q.ok());
  ResultValidity before;
  before.registry_version = 7;
  cache.Insert(*q, OneCellBatch(1), before);
  ResultValidity after;
  after.registry_version = 8;
  EXPECT_FALSE(cache.Lookup(*q, after).has_value());
  const auto stats = cache.GetStats();
  EXPECT_EQ(stats.invalidations, 1u);
  EXPECT_EQ(stats.entries, 0u);
  // Table-clock drift invalidates the same way.
  before.table_clocks = {3};
  cache.Insert(*q, OneCellBatch(1), before);
  ResultValidity moved = before;
  moved.table_clocks = {4};
  EXPECT_FALSE(cache.Lookup(*q, moved).has_value());
  EXPECT_EQ(cache.GetStats().invalidations, 2u);
}

// ---------------------------------------------------------------------------
// MaxsonServer end to end.
// ---------------------------------------------------------------------------

class ServeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = (std::filesystem::temp_directory_path() /
            ("maxson_serve_" + std::to_string(::getpid())))
               .string();
    ASSERT_TRUE(FileSystem::RemoveAll(dir_).ok());
    ASSERT_TRUE(FileSystem::MakeDirs(dir_ + "/t").ok());
    Schema schema;
    schema.AddField("id", TypeKind::kInt64);
    schema.AddField("name", TypeKind::kString);
    storage::CorcWriter writer(dir_ + "/t/" + FileSystem::PartFileName(0),
                               schema, {});
    ASSERT_TRUE(writer.Open().ok());
    const char* names[] = {"apple", "apricot", "banana", "apple", "cherry"};
    for (int i = 0; i < 5; ++i) {
      ASSERT_TRUE(
          writer.AppendRow({Value::Int64(i), Value::String(names[i])}).ok());
    }
    ASSERT_TRUE(writer.Close().ok());
    ASSERT_TRUE(catalog_.CreateDatabase("db").ok());
    catalog::TableInfo info;
    info.database = "db";
    info.name = "t";
    info.schema = schema;
    info.location = dir_ + "/t";
    ASSERT_TRUE(catalog_.CreateTable(info).ok());

    core::MaxsonConfig config;
    config.cache_root = dir_ + "/cache";
    config.engine.default_database = "db";
    config.metrics = &metrics_;
    session_ = std::make_unique<core::MaxsonSession>(&catalog_, config);
  }
  void TearDown() override {
    session_.reset();
    ASSERT_TRUE(FileSystem::RemoveAll(dir_).ok());
  }

  /// Fingerprint of `sql` executed directly on the session (no result
  /// cache involved) — the ground truth served answers are compared to.
  std::string DirectFingerprint(const std::string& sql) {
    auto result = session_->Execute(sql);
    EXPECT_TRUE(result.ok()) << sql << ": " << result.status();
    return result.ok() ? engine::FingerprintBatch(result->batch)
                       : std::string();
  }

  /// A registry entry pointing at a nonexistent table: importing it bumps
  /// CacheRegistry::version() without affecting any served query's plan
  /// (the midnight-cycle version churn, minus the disk churn).
  core::CacheEntry UnrelatedRegistryEntry(int i) {
    core::CacheEntry entry;
    entry.location.database = "db";
    entry.location.table = "unrelated";
    entry.location.column = "c";
    entry.location.path = "$.f" + std::to_string(i);
    entry.cache_table_dir = dir_ + "/cache/unrelated";
    entry.cache_field = "f";
    entry.cache_time = i;
    return entry;
  }

  std::string dir_;
  catalog::Catalog catalog_;
  obs::MetricsRegistry metrics_;
  std::unique_ptr<core::MaxsonSession> session_;
};

TEST_F(ServeTest, RepeatAndEquivalentFormQueriesHitTheResultCache) {
  MaxsonServer server(session_.get(), &catalog_, ServeOptions{});
  ClientSession client = server.Connect("analyst");

  const std::string sql = "SELECT id, name FROM db.t WHERE id > 1 ORDER BY id";
  const std::string expected = DirectFingerprint(sql);

  auto cold = client.Execute(sql);
  ASSERT_TRUE(cold.ok()) << cold.status();
  EXPECT_FALSE(cold->result_cache_hit);
  EXPECT_EQ(engine::FingerprintBatch(cold->result.batch), expected);

  auto warm = client.Execute(sql);
  ASSERT_TRUE(warm.ok());
  EXPECT_TRUE(warm->result_cache_hit);
  EXPECT_EQ(engine::FingerprintBatch(warm->result.batch), expected);

  // A semantically equivalent spelling hits the same entry: different
  // whitespace/case, flipped comparison, reordered conjunct-free form.
  auto equivalent =
      client.Execute("select id,  name from db.t where 1 < id order by id");
  ASSERT_TRUE(equivalent.ok());
  EXPECT_TRUE(equivalent->result_cache_hit);
  EXPECT_EQ(engine::FingerprintBatch(equivalent->result.batch), expected);

  const auto stats = server.result_cache_stats();
  EXPECT_EQ(stats.hits, 2u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(metrics_.GetCounter("maxson_serve_result_cache_hits_total")
                ->value(),
            2u);
}

TEST_F(ServeTest, InListOrderAndDuplicatesShareOneCacheEntry) {
  MaxsonServer server(session_.get(), &catalog_, ServeOptions{});
  ClientSession client = server.Connect("analyst");
  const std::string expected =
      DirectFingerprint("SELECT id FROM db.t WHERE id IN (1, 2) ORDER BY id");

  auto cold = client.Execute("SELECT id FROM db.t WHERE id IN (1, 2) "
                             "ORDER BY id");
  ASSERT_TRUE(cold.ok());
  EXPECT_FALSE(cold->result_cache_hit);
  auto warm = client.Execute("SELECT id FROM db.t WHERE id IN (2, 1, 1) "
                             "ORDER BY id");
  ASSERT_TRUE(warm.ok());
  EXPECT_TRUE(warm->result_cache_hit);
  EXPECT_EQ(engine::FingerprintBatch(warm->result.batch), expected);
}

TEST_F(ServeTest, PermutedProjectionIsServedFromCacheByteIdentically) {
  MaxsonServer server(session_.get(), &catalog_, ServeOptions{});
  ClientSession client = server.Connect("analyst");

  auto cold = client.Execute("SELECT id, name FROM db.t ORDER BY id");
  ASSERT_TRUE(cold.ok());
  EXPECT_FALSE(cold->result_cache_hit);

  // Same canonical key, different output column order: served by
  // permuting the stored columns, byte-identical to direct execution.
  const std::string permuted = "SELECT name, id FROM db.t ORDER BY id";
  const std::string expected = DirectFingerprint(permuted);
  auto warm = client.Execute(permuted);
  ASSERT_TRUE(warm.ok());
  EXPECT_TRUE(warm->result_cache_hit);
  EXPECT_EQ(engine::FingerprintBatch(warm->result.batch), expected);
}

TEST_F(ServeTest, RegistryVersionBumpInvalidatesCachedResults) {
  MaxsonServer server(session_.get(), &catalog_, ServeOptions{});
  ClientSession client = server.Connect("analyst");
  const std::string sql = "SELECT name FROM db.t WHERE id = 2";
  const std::string expected = DirectFingerprint(sql);

  auto cold = client.Execute(sql);
  ASSERT_TRUE(cold.ok());
  EXPECT_FALSE(cold->result_cache_hit);

  // Any registry mutation (midnight Put/Invalidate/Clear) bumps
  // CacheRegistry::version(), which must turn the cached result stale.
  session_->ImportCacheEntries({UnrelatedRegistryEntry(0)});

  auto after = client.Execute(sql);
  ASSERT_TRUE(after.ok());
  EXPECT_FALSE(after->result_cache_hit);
  EXPECT_EQ(engine::FingerprintBatch(after->result.batch), expected);
  EXPECT_GE(server.result_cache_stats().invalidations, 1u);

  // With the registry quiet again, the re-cached result serves hits.
  auto warm = client.Execute(sql);
  ASSERT_TRUE(warm.ok());
  EXPECT_TRUE(warm->result_cache_hit);
}

TEST_F(ServeTest, ExplainAndNonCanonicalQueriesPassThroughUncached) {
  MaxsonServer server(session_.get(), &catalog_, ServeOptions{});
  ClientSession client = server.Connect("analyst");
  for (int round = 0; round < 2; ++round) {
    auto result = client.Execute("EXPLAIN SELECT id FROM db.t");
    ASSERT_TRUE(result.ok()) << result.status();
    EXPECT_FALSE(result->result_cache_hit);
  }
  EXPECT_EQ(server.result_cache_stats().hits, 0u);
  EXPECT_EQ(server.result_cache_stats().entries, 0u);
}

TEST_F(ServeTest, DisablingTheResultCacheClearsAndStopsServingHits) {
  MaxsonServer server(session_.get(), &catalog_, ServeOptions{});
  ClientSession client = server.Connect("analyst");
  const std::string sql = "SELECT id FROM db.t ORDER BY id";
  ASSERT_TRUE(client.Execute(sql).ok());
  server.EnableResultCache(false);
  EXPECT_EQ(server.result_cache_stats().entries, 0u);
  auto off = client.Execute(sql);
  ASSERT_TRUE(off.ok());
  EXPECT_FALSE(off->result_cache_hit);
  server.EnableResultCache(true);
  ASSERT_TRUE(client.Execute(sql).ok());
  auto on = client.Execute(sql);
  ASSERT_TRUE(on.ok());
  EXPECT_TRUE(on->result_cache_hit);
}

TEST_F(ServeTest, RejectionsFailFastWithTypedStatusAndAreCounted) {
  ServeOptions options;
  MaxsonServer server(session_.get(), &catalog_, options);
  server.SetTenantLimits("crowded", TenantLimits{0, 0});
  ClientSession client = server.Connect("crowded");

  auto rejected = client.Execute("SELECT id FROM db.t");
  ASSERT_FALSE(rejected.ok());
  EXPECT_TRUE(rejected.status().IsResourceExhausted()) << rejected.status();
  EXPECT_EQ(metrics_
                .GetCounter("maxson_serve_rejected_total",
                            {{"tenant", "crowded"}})
                ->value(),
            1u);
  EXPECT_EQ(metrics_
                .GetCounter("maxson_serve_queries_total",
                            {{"tenant", "crowded"}})
                ->value(),
            1u);
  // Other tenants are unaffected.
  ClientSession other = server.Connect("fine");
  EXPECT_TRUE(other.Execute("SELECT id FROM db.t").ok());
}

TEST_F(ServeTest, ShutdownRejectsSubsequentQueries) {
  MaxsonServer server(session_.get(), &catalog_, ServeOptions{});
  ClientSession client = server.Connect("analyst");
  ASSERT_TRUE(client.Execute("SELECT id FROM db.t").ok());
  server.Shutdown();
  auto late = client.Execute("SELECT id FROM db.t");
  ASSERT_FALSE(late.ok());
  EXPECT_TRUE(late.status().IsResourceExhausted());
}

TEST_F(ServeTest, ConcurrentClientsGetCorrectResultsAndShareTheCache) {
  MaxsonServer server(session_.get(), &catalog_, ServeOptions{});
  const std::vector<std::string> queries = {
      "SELECT id, name FROM db.t WHERE id > 0 ORDER BY id",
      "SELECT name FROM db.t WHERE name LIKE 'ap%' ORDER BY name",
      "SELECT name, COUNT(*) AS n FROM db.t GROUP BY name ORDER BY name",
      "SELECT id FROM db.t WHERE id IN (0, 2, 4) ORDER BY id",
  };
  std::vector<std::string> expected;
  for (const std::string& sql : queries) {
    expected.push_back(DirectFingerprint(sql));
  }

  constexpr int kClients = 4;
  constexpr int kRounds = 25;
  std::atomic<int> wrong{0};
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&server, &queries, &expected, &wrong, c] {
      ClientSession session = server.Connect("tenant" + std::to_string(c));
      for (int round = 0; round < kRounds; ++round) {
        const size_t q = (c + round) % queries.size();
        auto outcome = session.Execute(queries[q]);
        ASSERT_TRUE(outcome.ok()) << outcome.status();
        if (engine::FingerprintBatch(outcome->result.batch) != expected[q]) {
          wrong.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& t : clients) t.join();

  EXPECT_EQ(wrong.load(), 0);
  const auto stats = server.result_cache_stats();
  EXPECT_EQ(stats.hits + stats.misses,
            static_cast<uint64_t>(kClients * kRounds));
  EXPECT_GT(stats.hits, 0u);
}

TEST_F(ServeTest, ConcurrentInvalidationNeverServesWrongResults) {
  MaxsonServer server(session_.get(), &catalog_, ServeOptions{});
  const std::string sql =
      "SELECT id, name FROM db.t WHERE id >= 0 ORDER BY id";
  const std::string expected = DirectFingerprint(sql);

  // The raw data never changes here; only the registry version churns the
  // way a midnight cycle would. Every served answer must stay
  // byte-identical — a stale hit after a version bump would not be.
  std::atomic<bool> stop{false};
  std::atomic<int> wrong{0};
  std::thread invalidator([this, &stop] {
    int i = 0;
    while (!stop.load()) {
      session_->ImportCacheEntries({UnrelatedRegistryEntry(i % 5)});
      std::this_thread::sleep_for(std::chrono::microseconds(200));
      ++i;
    }
  });
  std::vector<std::thread> clients;
  for (int c = 0; c < 3; ++c) {
    clients.emplace_back([&server, &sql, &expected, &wrong, c] {
      ClientSession session = server.Connect("tenant" + std::to_string(c));
      for (int round = 0; round < 40; ++round) {
        auto outcome = session.Execute(sql);
        ASSERT_TRUE(outcome.ok()) << outcome.status();
        if (engine::FingerprintBatch(outcome->result.batch) != expected) {
          wrong.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& t : clients) t.join();
  stop.store(true);
  invalidator.join();
  EXPECT_EQ(wrong.load(), 0);
}

}  // namespace
}  // namespace maxson::serve
