// PlanValidator unit tests: each malformed-plan class must produce its
// specific validation error (the invariant id is embedded in the Status
// message as "[invariant-id]"), and plans the real planner/rewriter emit
// must pass with a zero maxson_plan_validation_failures counter.

#include "engine/plan_validator.h"

#include <filesystem>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "catalog/catalog.h"
#include "engine/engine.h"
#include "engine/plan.h"
#include "gtest/gtest.h"
#include "obs/metrics_registry.h"
#include "storage/file_system.h"
#include "storage/types.h"
#include "workload/data_generator.h"

namespace maxson::engine {
namespace {

using storage::FileSystem;
using storage::TypeKind;
using storage::Value;

ExprPtr BoundColumn(const std::string& name, int index) {
  ExprPtr expr = Expr::ColumnRef(name);
  expr->column_index = index;
  return expr;
}

/// Minimal well-formed plan: SELECT id FROM /wh/db.t (id, date, payload).
PhysicalPlan MakeValidPlan() {
  PhysicalPlan plan;
  plan.scan.table_dir = "/wh/db.t";
  plan.scan.table_schema.AddField("id", TypeKind::kInt64);
  plan.scan.table_schema.AddField("date", TypeKind::kInt64);
  plan.scan.table_schema.AddField("payload", TypeKind::kString);
  plan.scan.columns = {"id", "payload"};
  plan.projections.push_back(BoundColumn("id", 0));
  plan.projection_names = {"id"};
  return plan;
}

CacheColumnRequest CacheRequest(const std::string& dir,
                                const std::string& field) {
  CacheColumnRequest req;
  req.cache_table_dir = dir;
  req.cache_field = field;
  req.output_name = field;
  return req;
}

TEST(PlanValidatorTest, WellFormedPlanPasses) {
  const PhysicalPlan plan = MakeValidPlan();
  EXPECT_TRUE(ValidatePlan(plan, nullptr).ok());
}

TEST(PlanValidatorTest, CachePlanPassesWhenBindingIsLive) {
  PhysicalPlan plan = MakeValidPlan();
  plan.scan.cache_columns.push_back(
      CacheRequest("/cache/db.t", "payload___f0"));
  const std::vector<CacheBinding> bindings = {
      {"/cache/db.t", "payload___f0"}};
  EXPECT_TRUE(ValidatePlan(plan, &bindings).ok());
}

TEST(PlanValidatorTest, DanglingCacheColumnFails) {
  PhysicalPlan plan = MakeValidPlan();
  plan.scan.cache_columns.push_back(
      CacheRequest("/cache/db.t", "payload___f0"));
  // Registry snapshot no longer carries the entry the rewrite bound to.
  const std::vector<CacheBinding> bindings;
  const Status status = ValidatePlan(plan, &bindings);
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInternal);
  EXPECT_NE(status.message().find("[cache-binding]"), std::string::npos)
      << status;
  EXPECT_NE(status.message().find("no live registry entry"),
            std::string::npos)
      << status;
  // The failure report embeds the EXPLAIN rendering of the offending plan.
  EXPECT_NE(status.message().find("plan:"), std::string::npos) << status;
}

TEST(PlanValidatorTest, PushdownOfUncachedPathFails) {
  PhysicalPlan plan = MakeValidPlan();
  plan.scan.cache_columns.push_back(
      CacheRequest("/cache/db.t", "payload___f0"));
  const std::vector<CacheBinding> bindings = {
      {"/cache/db.t", "payload___f0"}};
  // Predicate pushed to the cache reader on a field the cache file does not
  // carry: the reader would prune row groups it has no statistics for.
  storage::SargLeaf leaf;
  leaf.column = "payload___f9";
  leaf.op = storage::SargOp::kEq;
  leaf.literal = Value::String("x");
  plan.scan.cache_sarg.AddLeaf(std::move(leaf));
  const Status status = ValidatePlan(plan, &bindings);
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.message().find("[pushdown-soundness]"), std::string::npos)
      << status;
}

TEST(PlanValidatorTest, RawSargOnUnknownColumnFails) {
  PhysicalPlan plan = MakeValidPlan();
  storage::SargLeaf leaf;
  leaf.column = "nope";
  plan.scan.raw_sarg.AddLeaf(std::move(leaf));
  const Status status = ValidatePlan(plan, nullptr);
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.message().find("[pushdown-soundness]"), std::string::npos)
      << status;
}

TEST(PlanValidatorTest, FilterProjectSchemaMismatchFails) {
  PhysicalPlan plan = MakeValidPlan();
  // Scan output is (id, payload): the filter's 'payload' reference carries
  // a stale index pointing at 'id' — the schema changed after binding.
  plan.where = Expr::Binary(BinaryOp::kEq, BoundColumn("payload", 0),
                            Expr::Literal(Value::String("x")));
  const Status status = ValidatePlan(plan, nullptr);
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.message().find("[column-resolution]"), std::string::npos)
      << status;
  EXPECT_NE(status.message().find("WHERE"), std::string::npos) << status;
}

TEST(PlanValidatorTest, OutOfRangeProjectionIndexFails) {
  PhysicalPlan plan = MakeValidPlan();
  plan.projections[0] = BoundColumn("id", 7);
  const Status status = ValidatePlan(plan, nullptr);
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.message().find("[column-resolution]"), std::string::npos)
      << status;
}

TEST(PlanValidatorTest, UnboundColumnFails) {
  PhysicalPlan plan = MakeValidPlan();
  plan.projections[0] = Expr::ColumnRef("id");  // column_index still -1
  const Status status = ValidatePlan(plan, nullptr);
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.message().find("[column-resolution]"), std::string::npos)
      << status;
}

TEST(PlanValidatorTest, MisalignedDualReaderSplitsFail) {
  // Two cache tables in one scan: the value combiner opens one cache file
  // per raw split, so every request must target the same cache directory.
  PhysicalPlan plan = MakeValidPlan();
  plan.scan.cache_columns.push_back(
      CacheRequest("/cache/db.t", "payload___f0"));
  plan.scan.cache_columns.push_back(
      CacheRequest("/cache/other.t", "payload___f1"));
  const Status status = ValidatePlan(plan, nullptr);
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.message().find("[dual-reader-alignment]"),
            std::string::npos)
      << status;
}

TEST(PlanValidatorTest, CacheTableEqualToRawTableFails) {
  PhysicalPlan plan = MakeValidPlan();
  plan.scan.cache_columns.push_back(
      CacheRequest(plan.scan.table_dir, "payload___f0"));
  const Status status = ValidatePlan(plan, nullptr);
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.message().find("[dual-reader-alignment]"),
            std::string::npos)
      << status;
}

TEST(PlanValidatorTest, ProjectionNameCountMismatchFails) {
  PhysicalPlan plan = MakeValidPlan();
  plan.projection_names.push_back("extra");
  const Status status = ValidatePlan(plan, nullptr);
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.message().find("[operator-schema]"), std::string::npos)
      << status;
}

TEST(PlanValidatorTest, AggregateInWhereFails) {
  PhysicalPlan plan = MakeValidPlan();
  plan.where = Expr::Binary(BinaryOp::kGt,
                            Expr::Aggregate(AggKind::kCount, nullptr),
                            Expr::Literal(Value::Int64(1)));
  const Status status = ValidatePlan(plan, nullptr);
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.message().find("[aggregate-placement]"), std::string::npos)
      << status;
}

TEST(PlanValidatorTest, AggregateProjectionWithoutFlagFails) {
  PhysicalPlan plan = MakeValidPlan();
  plan.projections[0] = Expr::Aggregate(AggKind::kCount, nullptr);
  plan.projection_names = {"count"};
  // has_aggregates left false: the executor would evaluate row-at-a-time.
  const Status status = ValidatePlan(plan, nullptr);
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.message().find("[aggregate-placement]"), std::string::npos)
      << status;
}

// ---- Engine wiring: validation runs after the rewrite, failures count ----

/// Rewriter that injects a CacheColumnRequest pointing the cache reader at
/// the raw table directory — a dual-reader-alignment violation the
/// validator must catch after Maxson's rewrite hook runs.
class CorruptingRewriter : public PlanRewriter {
 public:
  Result<int> Rewrite(PhysicalPlan* plan) override {
    plan->scan.cache_columns.push_back(
        CacheRequest(plan->scan.table_dir, "payload___f0"));
    return 1;
  }
};

class PlanValidatorEngineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    root_ = (std::filesystem::temp_directory_path() /
             ("maxson_planval_" + std::to_string(::getpid())))
                .string();
    ASSERT_TRUE(FileSystem::RemoveAll(root_).ok());
    workload::JsonTableSpec spec;
    spec.database = "db";
    spec.table = "t";
    spec.num_properties = 4;
    spec.avg_json_bytes = 120;
    spec.rows = 200;
    spec.rows_per_file = 100;
    spec.rows_per_group = 50;
    spec.seed = 7;
    auto generated =
        workload::GenerateJsonTable(spec, root_ + "/warehouse", 2, &catalog_);
    ASSERT_TRUE(generated.ok()) << generated.status();
  }
  void TearDown() override { ASSERT_TRUE(FileSystem::RemoveAll(root_).ok()); }

  EngineConfig Config() const {
    EngineConfig config;
    config.default_database = "db";
    config.num_threads = 1;
    return config;
  }

  std::string root_;
  catalog::Catalog catalog_;
};

TEST_F(PlanValidatorEngineTest, CorruptRewriteFailsQueryAndBumpsCounter) {
  obs::MetricsRegistry registry;
  QueryEngine engine(&catalog_, Config());
  engine.set_metrics_registry(&registry);
  CorruptingRewriter rewriter;
  engine.set_plan_rewriter(&rewriter);

  auto result = engine.Execute("SELECT id FROM t");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInternal);
  EXPECT_NE(result.status().message().find("[dual-reader-alignment]"),
            std::string::npos)
      << result.status();
  EXPECT_EQ(registry.CounterTotals()["maxson_plan_validation_failures"], 1u);

  // Plan() runs the same validation.
  auto plan = engine.Plan("SELECT id FROM t");
  ASSERT_FALSE(plan.ok());
  EXPECT_EQ(registry.CounterTotals()["maxson_plan_validation_failures"], 2u);
}

TEST_F(PlanValidatorEngineTest, PlannerOutputPassesWithZeroFailures) {
  obs::MetricsRegistry registry;
  QueryEngine engine(&catalog_, Config());
  engine.set_metrics_registry(&registry);

  for (const char* sql : {
           "SELECT id FROM t WHERE id < 100",
           "SELECT id, get_json_object(payload, '$.f0') AS a FROM t "
           "ORDER BY id LIMIT 5",
           "SELECT get_json_object(payload, '$.f1') AS k, COUNT(*) FROM t "
           "GROUP BY k",
       }) {
    auto result = engine.Execute(sql);
    ASSERT_TRUE(result.ok()) << sql << ": " << result.status();
  }
  EXPECT_EQ(registry.CounterTotals()["maxson_plan_validation_failures"], 0u);
}

/// Rewriter that injects a cache request against a cache table directory
/// distinct from the raw table — structurally valid, so the verdict hangs
/// entirely on whether the binding is live in the snapshot.
class CachingRewriter : public PlanRewriter {
 public:
  explicit CachingRewriter(std::string cache_dir)
      : cache_dir_(std::move(cache_dir)) {}
  Result<int> Rewrite(PhysicalPlan* plan) override {
    plan->scan.cache_columns.push_back(
        CacheRequest(cache_dir_, "payload___f0"));
    return 1;
  }

 private:
  std::string cache_dir_;
};

TEST_F(PlanValidatorEngineTest, VerdictFollowsBindingSnapshotChanges) {
  obs::MetricsRegistry registry;
  QueryEngine engine(&catalog_, Config());
  engine.set_metrics_registry(&registry);
  const std::string cache_dir = root_ + "/cache/db.t";
  CachingRewriter rewriter(cache_dir);
  engine.set_plan_rewriter(&rewriter);

  // Live binding: repeated planning of the same SQL passes every time (in
  // Release the second call is served from the verdict cache).
  auto live = std::make_shared<const std::vector<CacheBinding>>(
      std::vector<CacheBinding>{{cache_dir, "payload___f0"}});
  engine.set_cache_binding_source([&] { return live; });
  ASSERT_TRUE(engine.Plan("SELECT id FROM t").ok());
  ASSERT_TRUE(engine.Plan("SELECT id FROM t").ok());
  EXPECT_EQ(registry.CounterTotals()["maxson_plan_validation_failures"], 0u);

  // The registry drops the entry (new snapshot object): the same SQL must
  // be re-validated against the new bindings and now fail — a cached
  // verdict keyed only on the SQL text would wrongly keep passing it.
  live = std::make_shared<const std::vector<CacheBinding>>();
  auto plan = engine.Plan("SELECT id FROM t");
  ASSERT_FALSE(plan.ok());
  EXPECT_NE(plan.status().message().find("[cache-binding]"),
            std::string::npos)
      << plan.status();
  EXPECT_EQ(registry.CounterTotals()["maxson_plan_validation_failures"], 1u);
}

TEST_F(PlanValidatorEngineTest, ReleaseKnobDisablesValidation) {
  EngineConfig config = Config();
  config.validate_plans = false;
  QueryEngine engine(&catalog_, config);
  CorruptingRewriter rewriter;
  engine.set_plan_rewriter(&rewriter);
  auto result = engine.Execute("SELECT id FROM t");
#ifdef NDEBUG
  // Validation is off: the corrupt plan reaches execution, which reports a
  // read error against the bogus cache directory instead of kInternal.
  if (!result.ok()) {
    EXPECT_NE(result.status().code(), StatusCode::kInternal)
        << result.status();
  }
#else
  // Debug builds validate unconditionally.
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInternal);
#endif
}

}  // namespace
}  // namespace maxson::engine
