#include <cmath>

#include "common/random.h"
#include "gtest/gtest.h"
#include "ml/crf.h"
#include "ml/dataset.h"
#include "ml/linear_models.h"
#include "ml/lstm.h"
#include "ml/lstm_crf.h"
#include "ml/matrix.h"
#include "ml/metrics.h"
#include "ml/mlp.h"

namespace maxson::ml {
namespace {

TEST(MatrixTest, MatVec) {
  Matrix m(2, 3);
  m.at(0, 0) = 1;
  m.at(0, 1) = 2;
  m.at(0, 2) = 3;
  m.at(1, 0) = 4;
  m.at(1, 1) = 5;
  m.at(1, 2) = 6;
  const std::vector<double> y = m.MatVec({1, 0, -1});
  ASSERT_EQ(y.size(), 2u);
  EXPECT_DOUBLE_EQ(y[0], -2.0);
  EXPECT_DOUBLE_EQ(y[1], -2.0);
  const std::vector<double> z = m.TransposeMatVec({1, 1});
  ASSERT_EQ(z.size(), 3u);
  EXPECT_DOUBLE_EQ(z[0], 5.0);
  EXPECT_DOUBLE_EQ(z[2], 9.0);
}

TEST(MatrixTest, AddOuterAndScaled) {
  Matrix m(2, 2);
  m.AddOuter({1, 2}, {3, 4}, 0.5);
  EXPECT_DOUBLE_EQ(m.at(0, 0), 1.5);
  EXPECT_DOUBLE_EQ(m.at(1, 1), 4.0);
  Matrix other(2, 2);
  other.Fill(1.0);
  m.AddScaled(other, 2.0);
  EXPECT_DOUBLE_EQ(m.at(0, 0), 3.5);
  EXPECT_GT(m.MaxAbs(), 5.9);
}

TEST(MatrixTest, NumericHelpers) {
  EXPECT_NEAR(Sigmoid(0.0), 0.5, 1e-12);
  EXPECT_NEAR(Sigmoid(100.0), 1.0, 1e-12);
  EXPECT_NEAR(Sigmoid(-100.0), 0.0, 1e-12);
  EXPECT_NEAR(LogSumExp({0.0, 0.0}), std::log(2.0), 1e-12);
  EXPECT_NEAR(LogSumExp({1000.0, 1000.0}), 1000.0 + std::log(2.0), 1e-9);
  std::vector<double> probs = {1.0, 2.0, 3.0};
  SoftmaxInPlace(&probs);
  EXPECT_NEAR(probs[0] + probs[1] + probs[2], 1.0, 1e-12);
  EXPECT_GT(probs[2], probs[1]);
}

TEST(MetricsTest, PrecisionRecallF1) {
  BinaryMetrics m;
  // 3 TP, 1 FP, 2 FN, 4 TN.
  for (int i = 0; i < 3; ++i) m.Add(1, 1);
  m.Add(1, 0);
  for (int i = 0; i < 2; ++i) m.Add(0, 1);
  for (int i = 0; i < 4; ++i) m.Add(0, 0);
  EXPECT_NEAR(m.Precision(), 0.75, 1e-12);
  EXPECT_NEAR(m.Recall(), 0.6, 1e-12);
  EXPECT_NEAR(m.F1(), 2 * 0.75 * 0.6 / (0.75 + 0.6), 1e-12);
  EXPECT_NEAR(m.Accuracy(), 0.7, 1e-12);
}

TEST(MetricsTest, DegenerateCasesAreZero) {
  BinaryMetrics empty;
  EXPECT_EQ(empty.Precision(), 0.0);
  EXPECT_EQ(empty.Recall(), 0.0);
  EXPECT_EQ(empty.F1(), 0.0);
}

TEST(DatasetTest, SplitFractionsAndDisjointness) {
  std::vector<Sample> samples(100);
  for (size_t i = 0; i < samples.size(); ++i) {
    samples[i].static_features = {static_cast<double>(i)};
    samples[i].labels = {static_cast<int>(i % 2)};
  }
  Rng rng(3);
  DatasetSplit split = SplitDataset(std::move(samples), 0.7, 0.2, &rng);
  EXPECT_EQ(split.train.size(), 70u);
  EXPECT_EQ(split.validation.size(), 20u);
  EXPECT_EQ(split.test.size(), 10u);
}

// ---- Synthetic learnability fixtures ----

/// Linearly separable static task: label = 1 iff x0 + x1 > 1.
std::vector<Sample> LinearlySeparable(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<Sample> samples(n);
  for (Sample& s : samples) {
    const double x0 = rng.NextDouble();
    const double x1 = rng.NextDouble();
    s.static_features = {x0, x1};
    s.labels = {x0 + x1 > 1.0 ? 1 : 0};
    s.steps = {{x0, x1}};
  }
  return samples;
}

/// XOR-like task: not linearly separable, learnable by an MLP.
std::vector<Sample> XorTask(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<Sample> samples(n);
  for (Sample& s : samples) {
    const int a = rng.NextBool() ? 1 : 0;
    const int b = rng.NextBool() ? 1 : 0;
    const double noise = rng.NextGaussian(0, 0.05);
    s.static_features = {static_cast<double>(a) + noise,
                         static_cast<double>(b) - noise};
    s.labels = {a ^ b};
    s.steps = {s.static_features};
  }
  return samples;
}

/// Periodic sequence task mimicking weekly-recurring JSONPaths: a pulse
/// appears every `period` steps; the label of step t says whether step t+1
/// carries a pulse. Position information is essential — aggregate features
/// (mean activity) are useless because the phase is random per sample.
std::vector<Sample> PeriodicTask(size_t n, int period, int window,
                                 uint64_t seed) {
  Rng rng(seed);
  std::vector<Sample> samples(n);
  for (Sample& s : samples) {
    const int phase = static_cast<int>(rng.NextBounded(period));
    double total = 0.0;
    for (int t = 0; t < window; ++t) {
      const double pulse = ((t + phase) % period == 0) ? 1.0 : 0.0;
      s.steps.push_back({pulse, static_cast<double>(window - t) / window});
      s.labels.push_back(((t + 1 + phase) % period == 0) ? 1 : 0);
      total += pulse;
    }
    // Orderless aggregates only: identical distribution across phases.
    s.static_features = {total / window, 1.0};
  }
  return samples;
}

template <typename Model>
double EvaluateF1(const Model& model, const std::vector<Sample>& test) {
  BinaryMetrics metrics;
  for (const Sample& s : test) {
    metrics.Add(model.Predict(s), s.final_label());
  }
  return metrics.F1();
}

TEST(LogisticRegressionTest, LearnsLinearlySeparableTask) {
  auto train = LinearlySeparable(600, 1);
  auto test = LinearlySeparable(200, 2);
  LogisticRegression lr;
  lr.Fit(train, LinearTrainConfig{});
  EXPECT_GT(EvaluateF1(lr, test), 0.93);
}

TEST(LinearSvmTest, LearnsLinearlySeparableTask) {
  auto train = LinearlySeparable(600, 3);
  auto test = LinearlySeparable(200, 4);
  LinearSvm svm;
  svm.Fit(train, LinearTrainConfig{});
  EXPECT_GT(EvaluateF1(svm, test), 0.93);
}

TEST(MlpTest, LearnsXorWhereLinearModelsCannot) {
  auto train = XorTask(800, 5);
  auto test = XorTask(200, 6);

  LogisticRegression lr;
  lr.Fit(train, LinearTrainConfig{});
  MlpConfig mlp_config;
  mlp_config.hidden_sizes = {16, 8};
  mlp_config.epochs = 120;
  MlpClassifier mlp;
  mlp.Fit(train, mlp_config);

  BinaryMetrics lr_metrics;
  BinaryMetrics mlp_metrics;
  for (const Sample& s : test) {
    lr_metrics.Add(lr.Predict(s), s.final_label());
    mlp_metrics.Add(mlp.Predict(s), s.final_label());
  }
  EXPECT_GT(mlp_metrics.Accuracy(), 0.9);
  EXPECT_LT(lr_metrics.Accuracy(), 0.75);  // linear model cannot solve XOR
}

TEST(LstmTest, LearnsPeriodicPatternStaticModelsCannot) {
  auto train = PeriodicTask(400, 7, 14, 7);
  auto test = PeriodicTask(150, 7, 14, 8);

  LstmConfig config;
  config.epochs = 25;
  LstmTagger lstm;
  lstm.Fit(train, config);
  const double lstm_f1 = EvaluateF1(lstm, test);

  LogisticRegression lr;
  lr.Fit(train, LinearTrainConfig{});
  const double lr_f1 = EvaluateF1(lr, test);

  EXPECT_GT(lstm_f1, 0.9) << "LSTM should learn the periodic phase";
  EXPECT_LT(lr_f1, 0.6) << "orderless features cannot reveal the phase";
}

TEST(LstmTest, EmissionsShapeMatchesSequence) {
  auto train = PeriodicTask(50, 3, 9, 9);
  LstmConfig config;
  config.epochs = 2;
  LstmTagger lstm;
  lstm.Fit(train, config);
  const auto emissions = lstm.Emissions(train[0].steps);
  ASSERT_EQ(emissions.size(), train[0].steps.size());
  EXPECT_EQ(emissions[0].size(), 2u);
}

TEST(CrfTest, ViterbiFollowsEmissionsWithZeroTransitions) {
  LinearChainCrf crf;
  const std::vector<std::vector<double>> emissions = {
      {2.0, 0.0}, {0.0, 3.0}, {1.0, 0.5}};
  const std::vector<int> path = crf.Decode(emissions);
  EXPECT_EQ(path, (std::vector<int>{0, 1, 0}));
}

TEST(CrfTest, NllDecreasesUnderTraining) {
  LinearChainCrf crf;
  // Sticky sequences: transitions should learn to favor staying.
  const std::vector<std::vector<double>> emissions = {
      {0.1, 0.0}, {0.0, 0.0}, {0.0, 0.0}, {0.0, 0.1}};
  const std::vector<int> labels = {0, 0, 1, 1};
  double first = 0.0;
  double last = 0.0;
  for (int iter = 0; iter < 200; ++iter) {
    const double nll = crf.NegLogLikelihood(emissions, labels, nullptr);
    if (iter == 0) first = nll;
    last = nll;
    crf.ApplyGradients(0.1, 5.0);
  }
  EXPECT_LT(last, first * 0.5);
}

TEST(CrfTest, EmissionGradientsSumToZeroPerStep) {
  // Marginals sum to 1 and the one-hot subtracts 1, so per-step emission
  // gradients must sum to ~0 — a structural invariant of the CRF gradient.
  LinearChainCrf crf;
  const std::vector<std::vector<double>> emissions = {
      {0.3, -0.2}, {0.9, 0.1}, {-0.5, 0.4}};
  const std::vector<int> labels = {1, 0, 1};
  std::vector<std::vector<double>> grads;
  crf.NegLogLikelihood(emissions, labels, &grads);
  ASSERT_EQ(grads.size(), 3u);
  for (const auto& g : grads) {
    EXPECT_NEAR(g[0] + g[1], 0.0, 1e-9);
  }
}

TEST(CrfTest, NllIsNonNegativeAndZeroForCertainty) {
  LinearChainCrf crf;
  // Overwhelming emissions make the gold path near-certain -> NLL near 0.
  const std::vector<std::vector<double>> emissions = {{50.0, 0.0},
                                                      {0.0, 50.0}};
  const std::vector<int> labels = {0, 1};
  const double nll = crf.NegLogLikelihood(emissions, labels, nullptr);
  EXPECT_GE(nll, 0.0);
  EXPECT_LT(nll, 1e-6);
}

TEST(LstmCrfTest, LearnsPeriodicTask) {
  auto train = PeriodicTask(400, 7, 14, 10);
  auto test = PeriodicTask(150, 7, 14, 11);
  LstmConfig config;
  config.epochs = 25;
  LstmCrf model;
  model.Fit(train, config);
  EXPECT_GT(EvaluateF1(model, test), 0.9);
}

TEST(LstmCrfTest, DecodedSequenceLengthMatches) {
  auto train = PeriodicTask(60, 3, 9, 12);
  LstmConfig config;
  config.epochs = 3;
  LstmCrf model;
  model.Fit(train, config);
  EXPECT_EQ(model.DecodeSequence(train[0]).size(), train[0].steps.size());
}

class SequenceModelComparisonTest : public ::testing::TestWithParam<int> {};

TEST_P(SequenceModelComparisonTest, LstmCrfAtLeastMatchesLstmOnNoisyLabels) {
  // With label noise that respects transition structure (spurious isolated
  // positives), the CRF's learned transitions can clean up what per-step
  // argmax cannot. We only assert LSTM+CRF is not worse beyond tolerance,
  // mirroring Table IV's consistent ordering.
  const int period = GetParam();
  auto train = PeriodicTask(300, period, 2 * period, 13 + period);
  auto test = PeriodicTask(120, period, 2 * period, 17 + period);
  LstmConfig config;
  config.epochs = 20;
  LstmTagger lstm;
  lstm.Fit(train, config);
  LstmCrf hybrid;
  hybrid.Fit(train, config);
  const double lstm_f1 = EvaluateF1(lstm, test);
  const double hybrid_f1 = EvaluateF1(hybrid, test);
  EXPECT_GE(hybrid_f1, lstm_f1 - 0.1);
}

INSTANTIATE_TEST_SUITE_P(Periods, SequenceModelComparisonTest,
                         ::testing::Values(3, 5, 7));

}  // namespace
}  // namespace maxson::ml
