#include <filesystem>

#include "catalog/catalog.h"
#include "engine/engine.h"
#include "engine/sql_parser.h"
#include "gtest/gtest.h"
#include "storage/corc_writer.h"
#include "storage/file_system.h"

namespace maxson::engine {
namespace {

using storage::FileSystem;
using storage::Schema;
using storage::TypeKind;
using storage::Value;

TEST(SqlParserFeaturesTest, ParsesDistinct) {
  auto stmt = ParseSql("SELECT DISTINCT a FROM t");
  ASSERT_TRUE(stmt.ok()) << stmt.status();
  EXPECT_TRUE(stmt->distinct);
  EXPECT_FALSE(ParseSql("SELECT a FROM t")->distinct);
}

TEST(SqlParserFeaturesTest, ParsesInList) {
  auto stmt = ParseSql("SELECT a FROM t WHERE a IN (1, 2, 3)");
  ASSERT_TRUE(stmt.ok()) << stmt.status();
  const Expr* in = stmt->where.get();
  ASSERT_EQ(in->kind, ExprKind::kFunction);
  EXPECT_EQ(in->func_name, "in");
  EXPECT_EQ(in->children.size(), 4u);
}

TEST(SqlParserFeaturesTest, ParsesNotInAndNotLike) {
  auto not_in = ParseSql("SELECT a FROM t WHERE a NOT IN ('x', 'y')");
  ASSERT_TRUE(not_in.ok()) << not_in.status();
  EXPECT_EQ(not_in->where->kind, ExprKind::kUnary);
  EXPECT_EQ(not_in->where->un_op, UnaryOp::kNot);
  EXPECT_EQ(not_in->where->children[0]->func_name, "in");

  auto not_like = ParseSql("SELECT a FROM t WHERE a NOT LIKE 'x%'");
  ASSERT_TRUE(not_like.ok()) << not_like.status();
  EXPECT_EQ(not_like->where->children[0]->func_name, "like");
}

TEST(SqlParserFeaturesTest, ParsesLike) {
  auto stmt = ParseSql("SELECT a FROM t WHERE name LIKE '%apple%'");
  ASSERT_TRUE(stmt.ok()) << stmt.status();
  EXPECT_EQ(stmt->where->func_name, "like");
  EXPECT_EQ(stmt->where->children[1]->literal.string_value(), "%apple%");
}

class SqlFeaturesEngineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = (std::filesystem::temp_directory_path() /
            ("maxson_sqlfeat_" + std::to_string(::getpid())))
               .string();
    ASSERT_TRUE(FileSystem::RemoveAll(dir_).ok());
    ASSERT_TRUE(FileSystem::MakeDirs(dir_ + "/t").ok());
    Schema schema;
    schema.AddField("id", TypeKind::kInt64);
    schema.AddField("name", TypeKind::kString);
    storage::CorcWriter writer(dir_ + "/t/" + FileSystem::PartFileName(0),
                               schema, {});
    ASSERT_TRUE(writer.Open().ok());
    const char* names[] = {"apple", "apricot", "banana", "apple", "cherry"};
    for (int i = 0; i < 5; ++i) {
      ASSERT_TRUE(
          writer.AppendRow({Value::Int64(i), Value::String(names[i])}).ok());
    }
    ASSERT_TRUE(writer.Close().ok());
    ASSERT_TRUE(catalog_.CreateDatabase("db").ok());
    catalog::TableInfo info;
    info.database = "db";
    info.name = "t";
    info.schema = schema;
    info.location = dir_ + "/t";
    ASSERT_TRUE(catalog_.CreateTable(info).ok());
  }
  void TearDown() override { ASSERT_TRUE(FileSystem::RemoveAll(dir_).ok()); }

  std::string dir_;
  catalog::Catalog catalog_;
};

TEST_F(SqlFeaturesEngineTest, DistinctRemovesDuplicates) {
  QueryEngine engine(&catalog_, EngineConfig{});
  auto result = engine.Execute("SELECT DISTINCT name FROM db.t ORDER BY name");
  ASSERT_TRUE(result.ok()) << result.status();
  ASSERT_EQ(result->batch.num_rows(), 4u);  // apple deduped
  EXPECT_EQ(result->batch.column(0).GetString(0), "apple");
  EXPECT_EQ(result->batch.column(0).GetString(3), "cherry");
}

TEST_F(SqlFeaturesEngineTest, DistinctWithLimitDedupsBeforeLimit) {
  QueryEngine engine(&catalog_, EngineConfig{});
  auto result = engine.Execute(
      "SELECT DISTINCT name FROM db.t ORDER BY name LIMIT 2");
  ASSERT_TRUE(result.ok()) << result.status();
  ASSERT_EQ(result->batch.num_rows(), 2u);
  EXPECT_EQ(result->batch.column(0).GetString(0), "apple");
  EXPECT_EQ(result->batch.column(0).GetString(1), "apricot");
}

TEST_F(SqlFeaturesEngineTest, InList) {
  QueryEngine engine(&catalog_, EngineConfig{});
  auto result = engine.Execute(
      "SELECT id FROM db.t WHERE name IN ('banana', 'cherry')");
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->batch.num_rows(), 2u);

  auto negated = engine.Execute(
      "SELECT id FROM db.t WHERE name NOT IN ('banana', 'cherry')");
  ASSERT_TRUE(negated.ok());
  EXPECT_EQ(negated->batch.num_rows(), 3u);
}

TEST_F(SqlFeaturesEngineTest, InWithNumericCoercion) {
  QueryEngine engine(&catalog_, EngineConfig{});
  auto result = engine.Execute("SELECT id FROM db.t WHERE id IN (0, 4, 9)");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->batch.num_rows(), 2u);
}

struct LikeCase {
  const char* pattern;
  int expected_rows;
};

class LikePatternTest : public SqlFeaturesEngineTest,
                        public ::testing::WithParamInterface<LikeCase> {};

TEST_P(LikePatternTest, MatchesExpectedRows) {
  QueryEngine engine(&catalog_, EngineConfig{});
  const LikeCase& c = GetParam();
  auto result = engine.Execute(std::string("SELECT id FROM db.t WHERE name "
                                           "LIKE '") +
                               c.pattern + "'");
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->batch.num_rows(), static_cast<size_t>(c.expected_rows))
      << c.pattern;
}

INSTANTIATE_TEST_SUITE_P(
    Patterns, LikePatternTest,
    ::testing::Values(LikeCase{"apple", 2},      // exact
                      LikeCase{"ap%", 3},        // prefix: apple x2, apricot
                      LikeCase{"%an%", 1},       // substring: banana
                      LikeCase{"_pple", 2},      // single wildcard
                      LikeCase{"%e", 2},         // suffix: apple x2
                      LikeCase{"%", 5},          // everything
                      LikeCase{"a_____t", 1},    // apricot
                      LikeCase{"z%", 0}));       // nothing

TEST(SqlParserFeaturesTest, ParsesHaving) {
  auto stmt = ParseSql(
      "SELECT name, COUNT(*) AS n FROM t GROUP BY name HAVING COUNT(*) > 1");
  ASSERT_TRUE(stmt.ok()) << stmt.status();
  ASSERT_NE(stmt->having, nullptr);
  EXPECT_TRUE(stmt->having->ContainsAggregate());
  // HAVING without GROUP BY is rejected.
  EXPECT_FALSE(ParseSql("SELECT a FROM t HAVING a > 1").ok());
}

TEST_F(SqlFeaturesEngineTest, HavingFiltersGroups) {
  QueryEngine engine(&catalog_, EngineConfig{});
  auto result = engine.Execute(
      "SELECT name, COUNT(*) AS n FROM db.t GROUP BY name "
      "HAVING COUNT(*) > 1 ORDER BY name");
  ASSERT_TRUE(result.ok()) << result.status();
  ASSERT_EQ(result->batch.num_rows(), 1u);  // only 'apple' appears twice
  EXPECT_EQ(result->batch.column(0).GetValue(0).ToString(), "apple");
  EXPECT_EQ(result->batch.column(1).GetValue(0).int64_value(), 2);
}

TEST_F(SqlFeaturesEngineTest, HavingOnAliasedAggregate) {
  QueryEngine engine(&catalog_, EngineConfig{});
  auto result = engine.Execute(
      "SELECT name, COUNT(*) AS n FROM db.t GROUP BY name HAVING n = 1 "
      "ORDER BY name");
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->batch.num_rows(), 3u);  // apricot, banana, cherry
}

TEST_F(SqlFeaturesEngineTest, HavingCombinesWithGroupExpression) {
  QueryEngine engine(&catalog_, EngineConfig{});
  auto result = engine.Execute(
      "SELECT name, min(id) AS first_id FROM db.t GROUP BY name "
      "HAVING min(id) >= 1 AND name LIKE '%a%' ORDER BY name");
  ASSERT_TRUE(result.ok()) << result.status();
  // Groups by min id: apple 0 (excluded by min), apricot 1, banana 2,
  // cherry 4 (excluded: no 'a') -> apricot, banana survive.
  ASSERT_EQ(result->batch.num_rows(), 2u);
  EXPECT_EQ(result->batch.column(0).GetValue(0).ToString(), "apricot");
  EXPECT_EQ(result->batch.column(0).GetValue(1).ToString(), "banana");
}

TEST_F(SqlFeaturesEngineTest, LikeOnNullYieldsNoRow) {
  // Add a row with NULL name.
  // (Write a second part file with a NULL.)
  storage::Schema schema;
  schema.AddField("id", storage::TypeKind::kInt64);
  schema.AddField("name", storage::TypeKind::kString);
  storage::CorcWriter writer(dir_ + "/t/" + FileSystem::PartFileName(1),
                             schema, {});
  ASSERT_TRUE(writer.Open().ok());
  ASSERT_TRUE(writer.AppendRow({Value::Int64(99), Value::Null()}).ok());
  ASSERT_TRUE(writer.Close().ok());

  QueryEngine engine(&catalog_, EngineConfig{});
  auto result = engine.Execute("SELECT id FROM db.t WHERE name LIKE '%'");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->batch.num_rows(), 5u);  // NULL name filtered out
}

}  // namespace
}  // namespace maxson::engine
