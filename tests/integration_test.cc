// Cross-module integration and property tests: randomized cached-vs-
// uncached equivalence, alignment invariants of the cacher, SARG pruning
// soundness, and failure injection (corrupt cache files, missing splits).

#include <filesystem>
#include <fstream>
#include <set>
#include <string>

#include "catalog/catalog.h"
#include "common/random.h"
#include "core/cacher.h"
#include "core/maxson.h"
#include "gtest/gtest.h"
#include "storage/corc_reader.h"
#include "storage/corc_writer.h"
#include "storage/file_system.h"
#include "workload/data_generator.h"

namespace maxson {
namespace {

using catalog::Catalog;
using core::MaxsonConfig;
using core::MaxsonSession;
using storage::FileSystem;
using workload::JsonPathLocation;
using workload::JsonTableSpec;

JsonPathLocation Loc(const std::string& db, const std::string& table,
                     const std::string& path) {
  JsonPathLocation l;
  l.database = db;
  l.table = table;
  l.column = "payload";
  l.path = path;
  return l;
}

class IntegrationTest : public ::testing::Test {
 protected:
  void SetUp() override {
    root_ = (std::filesystem::temp_directory_path() /
             ("maxson_integration_" + std::to_string(::getpid())))
                .string();
    ASSERT_TRUE(FileSystem::RemoveAll(root_).ok());
  }
  void TearDown() override { ASSERT_TRUE(FileSystem::RemoveAll(root_).ok()); }

  void MakeTable(const std::string& table, uint64_t rows,
                 double variability = 0.0, int properties = 14) {
    JsonTableSpec spec;
    spec.database = "db";
    spec.table = table;
    spec.num_properties = properties;
    spec.avg_json_bytes = 350;
    spec.schema_variability = variability;
    spec.rows = rows;
    spec.rows_per_file = 700;
    spec.rows_per_group = 100;
    spec.seed = rows * 31 + properties;
    auto generated = workload::GenerateJsonTable(spec, root_ + "/warehouse",
                                                 3, &catalog_);
    ASSERT_TRUE(generated.ok()) << generated.status();
  }

  MaxsonSession MakeSession(uint64_t budget = 64ull << 20) {
    MaxsonConfig config;
    config.cache_root = root_ + "/cache";
    config.cache_budget_bytes = budget;
    config.engine.default_database = "db";
    config.predictor.epochs = 5;
    return MaxsonSession(&catalog_, config);
  }

  void FeedDailyHistory(MaxsonSession* session, const std::string& table,
                        const std::vector<std::string>& paths, int days) {
    for (int day = 0; day < days; ++day) {
      for (int rep = 0; rep < 3; ++rep) {
        workload::QueryRecord q;
        q.date = day;
        for (const std::string& p : paths) {
          q.paths.push_back(Loc("db", table, p));
        }
        session->RecordQuery(q);
      }
    }
  }

  std::string root_;
  Catalog catalog_;
};

TEST_F(IntegrationTest, RandomizedCachedVsUncachedEquivalence) {
  // Property: for randomly chosen projections/predicates over a table with
  // schema variability (so some records miss fields -> NULLs), the cached
  // and uncached executions return identical row sets.
  MakeTable("t", 2100, 0.5);
  MaxsonSession session = MakeSession();
  FeedDailyHistory(&session, "t",
                   {"$.f0", "$.f1", "$.f2", "$.f4", "$.f5"}, 14);
  ASSERT_TRUE(session.TrainPredictor(8, 13).ok());
  auto report = session.RunMidnightCycle(14);
  ASSERT_TRUE(report.ok()) << report.status();
  ASSERT_GT(report->selected.size(), 2u);

  Rng rng(77);
  const char* fields[] = {"$.f0", "$.f1", "$.f2", "$.f4", "$.f5", "$.f7"};
  for (int trial = 0; trial < 12; ++trial) {
    // Random projection of 1-3 fields, random predicate shape.
    std::string select = "SELECT id";
    const int nproj = 1 + static_cast<int>(rng.NextBounded(3));
    for (int i = 0; i < nproj; ++i) {
      const char* f = fields[rng.NextBounded(6)];
      select += std::string(", get_json_object(payload, '") + f + "') AS p" +
                std::to_string(i);
    }
    select += " FROM db.t";
    switch (rng.NextBounded(3)) {
      case 0:
        select += " WHERE to_int(get_json_object(payload, '$.f0')) < " +
                  std::to_string(rng.NextBounded(2100));
        break;
      case 1:
        select += " WHERE get_json_object(payload, '$.f1') = 'cat" +
                  std::to_string(rng.NextBounded(10)) + "'";
        break;
      default:
        break;  // no predicate
    }
    auto cached = session.Execute(select);
    auto plain = session.ExecuteWithoutCache(select);
    ASSERT_TRUE(cached.ok()) << select << ": " << cached.status();
    ASSERT_TRUE(plain.ok()) << select << ": " << plain.status();
    ASSERT_EQ(cached->batch.num_rows(), plain->batch.num_rows()) << select;
    for (size_t r = 0; r < cached->batch.num_rows(); ++r) {
      for (size_t c = 0; c < cached->batch.num_columns(); ++c) {
        EXPECT_EQ(cached->batch.column(c).GetValue(r).ToString(),
                  plain->batch.column(c).GetValue(r).ToString())
            << select << " row " << r << " col " << c;
      }
    }
  }
}

TEST_F(IntegrationTest, CacheFilesAlwaysAlignWithRawFiles) {
  // Property: for every part file, the cache file with the same index has
  // identical row count and row-group size — the alignment invariant that
  // Algorithms 2 and 3 rely on.
  MakeTable("t", 3456);  // deliberately not a multiple of rows_per_file
  MaxsonSession session = MakeSession();
  FeedDailyHistory(&session, "t", {"$.f0", "$.f2"}, 14);
  ASSERT_TRUE(session.TrainPredictor(8, 13).ok());
  ASSERT_TRUE(session.RunMidnightCycle(14).ok());

  auto raw_splits = FileSystem::ListSplits(root_ + "/warehouse/db/t");
  auto cache_splits = FileSystem::ListSplits(root_ + "/cache/db.t");
  ASSERT_TRUE(raw_splits.ok());
  ASSERT_TRUE(cache_splits.ok());
  ASSERT_EQ(raw_splits->size(), cache_splits->size());
  for (size_t i = 0; i < raw_splits->size(); ++i) {
    storage::CorcReader raw((*raw_splits)[i].path);
    storage::CorcReader cache((*cache_splits)[i].path);
    ASSERT_TRUE(raw.Open().ok());
    ASSERT_TRUE(cache.Open().ok());
    EXPECT_EQ(raw.num_rows(), cache.num_rows()) << i;
    EXPECT_EQ(raw.footer().rows_per_group, cache.footer().rows_per_group);
    EXPECT_EQ(raw.num_stripes(), cache.num_stripes());
  }
}

TEST_F(IntegrationTest, SargPruningNeverChangesResults) {
  // Property: row-group pruning is a pure optimization. Compare result row
  // counts of selective predicates against a full-scan + engine filter
  // (which always re-checks rows).
  MakeTable("t", 2800);
  MaxsonSession session = MakeSession();
  FeedDailyHistory(&session, "t", {"$.f0"}, 14);
  ASSERT_TRUE(session.TrainPredictor(8, 13).ok());
  ASSERT_TRUE(session.RunMidnightCycle(14).ok());

  for (int threshold : {0, 1, 700, 1399, 1400, 2799, 2800, 5000}) {
    const std::string sql =
        "SELECT id FROM db.t WHERE to_int(get_json_object(payload, "
        "'$.f0')) >= " +
        std::to_string(threshold);
    auto cached = session.Execute(sql);
    ASSERT_TRUE(cached.ok()) << cached.status();
    const int64_t expected =
        std::max<int64_t>(0, 2800 - std::min<int64_t>(2800, threshold));
    EXPECT_EQ(cached->batch.num_rows(), static_cast<size_t>(expected))
        << "threshold " << threshold;
  }
}

TEST_F(IntegrationTest, MultiTableCachingKeepsTablesSeparate) {
  MakeTable("a", 1400);
  MakeTable("b", 2100, 0.0, 20);
  MaxsonSession session = MakeSession();
  FeedDailyHistory(&session, "a", {"$.f0", "$.f1"}, 14);
  FeedDailyHistory(&session, "b", {"$.f2", "$.f3"}, 14);
  ASSERT_TRUE(session.TrainPredictor(8, 13).ok());
  auto report = session.RunMidnightCycle(14);
  ASSERT_TRUE(report.ok());
  // Both tables' paths cached, into separate cache tables.
  EXPECT_TRUE(FileSystem::Exists(root_ + "/cache/db.a"));
  EXPECT_TRUE(FileSystem::Exists(root_ + "/cache/db.b"));

  auto qa = session.Execute(
      "SELECT get_json_object(payload, '$.f1') FROM db.a LIMIT 4");
  auto qb = session.Execute(
      "SELECT get_json_object(payload, '$.f2') FROM db.b LIMIT 4");
  ASSERT_TRUE(qa.ok()) << qa.status();
  ASSERT_TRUE(qb.ok()) << qb.status();
  EXPECT_EQ(qa->metrics.parse.records_parsed, 0u);
  EXPECT_EQ(qb->metrics.parse.records_parsed, 0u);
}

TEST_F(IntegrationTest, CorruptCacheFileFallsBackToRaw) {
  // Failure injection: truncate one cache part file. The scan must detect
  // the corruption, quarantine that split's cache file, and re-derive the
  // column from the raw table — same rows as a cache-disabled run, never an
  // error, never silently wrong data.
  MakeTable("t", 1400);
  MaxsonSession session = MakeSession();
  FeedDailyHistory(&session, "t", {"$.f0"}, 14);
  ASSERT_TRUE(session.TrainPredictor(8, 13).ok());
  ASSERT_TRUE(session.RunMidnightCycle(14).ok());

  const std::string sql = "SELECT get_json_object(payload, '$.f0') FROM db.t";
  auto expected = session.ExecuteWithoutCache(sql);
  ASSERT_TRUE(expected.ok()) << expected.status();

  auto cache_splits = FileSystem::ListSplits(root_ + "/cache/db.t");
  ASSERT_TRUE(cache_splits.ok());
  ASSERT_FALSE(cache_splits->empty());
  {
    std::ofstream truncate((*cache_splits)[0].path,
                           std::ios::binary | std::ios::trunc);
    truncate << "garbage";
  }
  auto result = session.Execute(sql);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->metrics.cache_corruption_fallbacks, 1u);
  // Only the corrupt split re-parses; the other split still reads cached.
  EXPECT_GT(result->metrics.parse.records_parsed, 0u);
  ASSERT_EQ(result->batch.num_rows(), expected->batch.num_rows());
  for (size_t r = 0; r < result->batch.num_rows(); ++r) {
    for (size_t c = 0; c < result->batch.num_columns(); ++c) {
      EXPECT_EQ(result->batch.column(c).GetValue(r).ToString(),
                expected->batch.column(c).GetValue(r).ToString())
          << "row " << r << " col " << c;
    }
  }
}

TEST_F(IntegrationTest, MissingCacheSplitSurfacesAsError) {
  MakeTable("t", 1400);
  MaxsonSession session = MakeSession();
  FeedDailyHistory(&session, "t", {"$.f0"}, 14);
  ASSERT_TRUE(session.TrainPredictor(8, 13).ok());
  ASSERT_TRUE(session.RunMidnightCycle(14).ok());
  auto cache_splits = FileSystem::ListSplits(root_ + "/cache/db.t");
  ASSERT_TRUE(cache_splits.ok());
  std::filesystem::remove((*cache_splits)[1].path);
  auto result = session.Execute(
      "SELECT get_json_object(payload, '$.f0') FROM db.t");
  EXPECT_FALSE(result.ok());
}

TEST_F(IntegrationTest, SelfJoinUsesCacheOnBothSides) {
  // Cached get_json_object calls under both join inputs must be rewritten
  // per-scan (qualified placeholders) and produce the same rows as the
  // uncached plan.
  MakeTable("t", 700);
  MaxsonSession session = MakeSession();
  FeedDailyHistory(&session, "t", {"$.f1"}, 14);
  ASSERT_TRUE(session.TrainPredictor(8, 13).ok());
  ASSERT_TRUE(session.RunMidnightCycle(14).ok());

  const std::string sql =
      "SELECT a.id FROM db.t a JOIN db.t b ON "
      "get_json_object(a.payload, '$.f1') = "
      "get_json_object(b.payload, '$.f1') "
      "WHERE a.id < 40 AND b.id < 40";
  auto cached = session.Execute(sql);
  auto plain = session.ExecuteWithoutCache(sql);
  ASSERT_TRUE(cached.ok()) << cached.status();
  ASSERT_TRUE(plain.ok()) << plain.status();
  EXPECT_EQ(cached->batch.num_rows(), plain->batch.num_rows());
  EXPECT_GT(cached->batch.num_rows(), 0u);
  // Join keys on both sides resolved from cache: no JSON parsing at all.
  EXPECT_EQ(cached->metrics.parse.records_parsed, 0u);
  // Both scans carry a cache column request.
  auto plan = session.Plan(sql);
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan->scan.cache_columns.size(), 1u);
  ASSERT_TRUE(plan->join_scan.has_value());
  EXPECT_EQ(plan->join_scan->cache_columns.size(), 1u);
}

TEST_F(IntegrationTest, MultiStripeFilesStillAlignAndMatch) {
  // Force multiple stripes per part file; pushdown sharing is disabled by
  // the paper's single-stripe rule, but results must remain identical.
  {
    workload::JsonTableSpec spec;
    spec.database = "db";
    spec.table = "striped";
    spec.num_properties = 10;
    spec.rows = 900;
    spec.rows_per_file = 900;
    spec.rows_per_group = 50;
    auto generated =
        workload::GenerateJsonTable(spec, root_ + "/warehouse", 3, &catalog_);
    ASSERT_TRUE(generated.ok());
  }
  // Rewrite the raw file with small stripes by copying it through a writer.
  const std::string table_dir = root_ + "/warehouse/db/striped";
  {
    auto splits = FileSystem::ListSplits(table_dir);
    ASSERT_TRUE(splits.ok());
    storage::CorcReader reader((*splits)[0].path);
    ASSERT_TRUE(reader.Open().ok());
    auto all = reader.ReadAll(nullptr);
    ASSERT_TRUE(all.ok());
    storage::CorcWriterOptions options;
    options.rows_per_group = 50;
    options.rows_per_stripe = 300;  // -> 3 stripes
    storage::CorcWriter writer((*splits)[0].path + ".tmp", reader.schema(),
                               options);
    ASSERT_TRUE(writer.Open().ok());
    ASSERT_TRUE(writer.WriteBatch(*all).ok());
    ASSERT_TRUE(writer.Close().ok());
    std::filesystem::rename((*splits)[0].path + ".tmp", (*splits)[0].path);
  }

  MaxsonSession session = MakeSession();
  FeedDailyHistory(&session, "striped", {"$.f0", "$.f1"}, 14);
  ASSERT_TRUE(session.TrainPredictor(8, 13).ok());
  ASSERT_TRUE(session.RunMidnightCycle(14).ok());

  const std::string sql =
      "SELECT get_json_object(payload, '$.f1') AS c, COUNT(*) AS n "
      "FROM db.striped WHERE to_int(get_json_object(payload, '$.f0')) >= "
      "450 GROUP BY get_json_object(payload, '$.f1') ORDER BY c";
  auto cached = session.Execute(sql);
  auto plain = session.ExecuteWithoutCache(sql);
  ASSERT_TRUE(cached.ok()) << cached.status();
  ASSERT_TRUE(plain.ok()) << plain.status();
  ASSERT_EQ(cached->batch.num_rows(), plain->batch.num_rows());
  for (size_t r = 0; r < cached->batch.num_rows(); ++r) {
    EXPECT_EQ(cached->batch.column(1).GetValue(r).ToString(),
              plain->batch.column(1).GetValue(r).ToString());
  }
}

TEST_F(IntegrationTest, MisonBackendEndToEndMatchesDom) {
  MakeTable("t", 1400, 0.3);
  MaxsonConfig config;
  config.cache_root = root_ + "/cache";
  config.engine.default_database = "db";
  config.engine.json_backend = engine::JsonBackend::kMison;
  config.predictor.epochs = 5;
  MaxsonSession mison(&catalog_, config);
  FeedDailyHistory(&mison, "t", {"$.f0", "$.f1"}, 14);
  ASSERT_TRUE(mison.TrainPredictor(8, 13).ok());
  ASSERT_TRUE(mison.RunMidnightCycle(14).ok());

  const std::string sql =
      "SELECT get_json_object(payload, '$.f1') AS c, COUNT(*) AS n "
      "FROM db.t GROUP BY get_json_object(payload, '$.f1') ORDER BY c";
  auto cached = mison.Execute(sql);
  auto plain = mison.ExecuteWithoutCache(sql);
  ASSERT_TRUE(cached.ok()) << cached.status();
  ASSERT_TRUE(plain.ok()) << plain.status();
  ASSERT_EQ(cached->batch.num_rows(), plain->batch.num_rows());
  for (size_t r = 0; r < cached->batch.num_rows(); ++r) {
    EXPECT_EQ(cached->batch.column(1).GetValue(r).ToString(),
              plain->batch.column(1).GetValue(r).ToString());
  }
}

TEST_F(IntegrationTest, TypedCacheColumnsGetNumericStats) {
  // $.f0 is integral in every record, so the cacher must store it in a
  // typed column whose min/max are numeric (enabling correct pushdown).
  MakeTable("t", 1400);
  MaxsonSession session = MakeSession();
  FeedDailyHistory(&session, "t", {"$.f0", "$.f1"}, 14);
  ASSERT_TRUE(session.TrainPredictor(8, 13).ok());
  ASSERT_TRUE(session.RunMidnightCycle(14).ok());

  auto cache_splits = FileSystem::ListSplits(root_ + "/cache/db.t");
  ASSERT_TRUE(cache_splits.ok());
  storage::CorcReader reader((*cache_splits)[0].path);
  ASSERT_TRUE(reader.Open().ok());
  const int f0 = reader.schema().FindField(
      core::CacheFieldName("payload", "$.f0"));
  const int f1 = reader.schema().FindField(
      core::CacheFieldName("payload", "$.f1"));
  ASSERT_GE(f0, 0);
  ASSERT_GE(f1, 0);
  EXPECT_EQ(reader.schema().field(static_cast<size_t>(f0)).type,
            storage::TypeKind::kInt64);
  EXPECT_EQ(reader.schema().field(static_cast<size_t>(f1)).type,
            storage::TypeKind::kString);
  const auto& stats = reader.footer()
                          .stripes[0]
                          .columns[static_cast<size_t>(f0)]
                          .row_groups[0]
                          .stats;
  EXPECT_TRUE(stats.min.is_int64());
  EXPECT_TRUE(stats.max.is_int64());
}

}  // namespace
}  // namespace maxson
