#include <filesystem>

#include "core/collector.h"
#include "core/predictor.h"
#include "gtest/gtest.h"
#include "json/dom_parser.h"
#include "json/json_writer.h"
#include "ml/crf.h"
#include "ml/lstm.h"
#include "ml/lstm_crf.h"
#include "ml/serialize.h"

namespace maxson::ml {
namespace {

TEST(SerializeTest, MatrixRoundTrip) {
  Matrix m(2, 3);
  for (size_t r = 0; r < 2; ++r) {
    for (size_t c = 0; c < 3; ++c) {
      m.at(r, c) = static_cast<double>(r * 10 + c) + 0.25;
    }
  }
  auto restored = MatrixFromJson(MatrixToJson(m));
  ASSERT_TRUE(restored.ok()) << restored.status();
  ASSERT_EQ(restored->rows(), 2u);
  ASSERT_EQ(restored->cols(), 3u);
  for (size_t r = 0; r < 2; ++r) {
    for (size_t c = 0; c < 3; ++c) {
      EXPECT_DOUBLE_EQ(restored->at(r, c), m.at(r, c));
    }
  }
}

TEST(SerializeTest, MatrixRejectsMalformed) {
  auto garbage = json::ParseJson(R"({"rows":2,"cols":2,"data":[1,2,3]})");
  ASSERT_TRUE(garbage.ok());
  EXPECT_FALSE(MatrixFromJson(*garbage).ok());
  EXPECT_FALSE(MatrixFromJson(json::JsonValue::Array()).ok());
}

TEST(SerializeTest, VectorRoundTrip) {
  const std::vector<double> v = {1.5, -2.25, 0.0};
  auto restored = VectorFromJson(VectorToJson(v));
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(*restored, v);
}

/// A tiny task both model copies can be compared on.
std::vector<Sample> TinyTask(uint64_t seed) {
  Rng rng(seed);
  std::vector<Sample> samples(80);
  for (Sample& s : samples) {
    const int phase = static_cast<int>(rng.NextBounded(3));
    for (int t = 0; t < 9; ++t) {
      s.steps.push_back({((t + phase) % 3 == 0) ? 1.0 : 0.0, 0.5});
      s.labels.push_back(((t + 1 + phase) % 3 == 0) ? 1 : 0);
    }
    s.static_features = {0.5, 1.0};
  }
  return samples;
}

TEST(SerializeTest, LstmRoundTripPredictsIdentically) {
  auto samples = TinyTask(3);
  LstmConfig config;
  config.epochs = 6;
  config.hidden_size = 8;
  LstmTagger lstm;
  lstm.Fit(samples, config);

  auto restored = LstmTagger::FromJson(lstm.ToJson());
  ASSERT_TRUE(restored.ok()) << restored.status();
  for (const Sample& s : samples) {
    EXPECT_EQ(lstm.Predict(s), restored->Predict(s));
  }
  // Text round trip (through the writer/parser) also preserves behaviour.
  auto reparsed = json::ParseJson(json::WriteJson(lstm.ToJson()));
  ASSERT_TRUE(reparsed.ok());
  auto from_text = LstmTagger::FromJson(*reparsed);
  ASSERT_TRUE(from_text.ok());
  EXPECT_EQ(lstm.Predict(samples[0]), from_text->Predict(samples[0]));
}

TEST(SerializeTest, CrfRoundTrip) {
  LinearChainCrf crf;
  const std::vector<std::vector<double>> emissions = {
      {0.1, 0.0}, {0.0, 0.2}, {0.3, 0.0}};
  const std::vector<int> labels = {0, 1, 0};
  for (int i = 0; i < 50; ++i) {
    crf.NegLogLikelihood(emissions, labels, nullptr);
    crf.ApplyGradients(0.1, 5.0);
  }
  auto restored = LinearChainCrf::FromJson(crf.ToJson());
  ASSERT_TRUE(restored.ok()) << restored.status();
  EXPECT_EQ(crf.Decode(emissions), restored->Decode(emissions));
  for (int i = 0; i < 4; ++i) {
    EXPECT_DOUBLE_EQ(crf.transitions()[i], restored->transitions()[i]);
  }
}

TEST(SerializeTest, LstmCrfRoundTripPredictsIdentically) {
  auto samples = TinyTask(7);
  LstmConfig config;
  config.epochs = 6;
  config.hidden_size = 8;
  LstmCrf model;
  model.Fit(samples, config);
  auto restored = LstmCrf::FromJson(model.ToJson());
  ASSERT_TRUE(restored.ok()) << restored.status();
  for (const Sample& s : samples) {
    EXPECT_EQ(model.DecodeSequence(s), restored->DecodeSequence(s));
  }
}

}  // namespace
}  // namespace maxson::ml

namespace maxson::core {
namespace {

TEST(PredictorSerializeTest, SaveLoadRestoresPredictions) {
  // Train an LSTM+CRF predictor on collector history, save, reload into a
  // fresh predictor, and require identical MPJP predictions.
  JsonPathCollector collector;
  for (int day = 0; day < 21; ++day) {
    workload::QueryRecord daily;
    daily.date = day;
    workload::JsonPathLocation loc;
    loc.database = "db";
    loc.table = "t";
    loc.column = "payload";
    loc.path = "$.daily";
    daily.paths = {loc, loc};  // two parses per day -> MPJP
    collector.Record(daily);
    if (day % 7 == 0) {
      workload::QueryRecord weekly;
      weekly.date = day;
      loc.path = "$.weekly";
      weekly.paths = {loc};
      collector.Record(weekly);
    }
  }
  PredictorConfig config;
  config.epochs = 8;
  JsonPathPredictor trained(config);
  ASSERT_TRUE(trained.Train(trained.BuildDataset(collector, 8, 20)).ok());

  const std::string path =
      (std::filesystem::temp_directory_path() /
       ("maxson_model_" + std::to_string(::getpid()) + ".json"))
          .string();
  ASSERT_TRUE(trained.SaveModel(path).ok());

  JsonPathPredictor loaded(config);
  ASSERT_TRUE(loaded.LoadModel(path).ok());
  EXPECT_EQ(trained.PredictMpjps(collector, 21),
            loaded.PredictMpjps(collector, 21));

  // Model-kind mismatch is rejected.
  PredictorConfig other = config;
  other.model = PredictorModel::kLstm;
  JsonPathPredictor wrong(other);
  EXPECT_FALSE(wrong.LoadModel(path).ok());
  std::filesystem::remove(path);

  // Unimplemented families fail cleanly.
  PredictorConfig lr_config;
  lr_config.model = PredictorModel::kLogisticRegression;
  JsonPathPredictor lr(lr_config);
  ASSERT_TRUE(lr.Train(lr.BuildDataset(collector, 8, 20)).ok());
  EXPECT_EQ(lr.SaveModel("/tmp/never.json").code(),
            StatusCode::kUnimplemented);
}

}  // namespace
}  // namespace maxson::core
