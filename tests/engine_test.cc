#include <filesystem>
#include <string>

#include "catalog/catalog.h"
#include "engine/engine.h"
#include "engine/planner.h"
#include "engine/sql_parser.h"
#include "gtest/gtest.h"
#include "storage/corc_writer.h"
#include "storage/file_system.h"

namespace maxson::engine {
namespace {

using storage::CorcWriter;
using storage::CorcWriterOptions;
using storage::FileSystem;
using storage::Schema;
using storage::TypeKind;
using storage::Value;

// ---------- SQL parser unit tests ----------

TEST(SqlLexerViaParserTest, RejectsBadInput) {
  EXPECT_FALSE(ParseSql("SELECT 'unterminated FROM t").ok());
  EXPECT_FALSE(ParseSql("SELECT ~ FROM t").ok());
  EXPECT_FALSE(ParseSql("").ok());
  EXPECT_FALSE(ParseSql("INSERT INTO t VALUES (1)").ok());
}

TEST(SqlParserTest, ParsesSimpleSelect) {
  auto stmt = ParseSql("SELECT a, b AS bee FROM mydb.T;");
  ASSERT_TRUE(stmt.ok()) << stmt.status();
  ASSERT_EQ(stmt->items.size(), 2u);
  EXPECT_EQ(stmt->items[0].expr->column, "a");
  EXPECT_TRUE(stmt->items[0].alias.empty());
  EXPECT_EQ(stmt->items[1].alias, "bee");
  EXPECT_EQ(stmt->from.database, "mydb");
  EXPECT_EQ(stmt->from.table, "T");
  EXPECT_EQ(stmt->limit, -1);
}

TEST(SqlParserTest, ParsesGetJsonObjectCalls) {
  auto stmt = ParseSql(
      "select mall_id, get_json_object(sale_logs, '$.item_id') as item_id "
      "from mydb.T where date between '20190101' and '20190103' "
      "order by get_json_object(sale_logs, '$.turnover') limit 1");
  ASSERT_TRUE(stmt.ok()) << stmt.status();
  ASSERT_EQ(stmt->items.size(), 2u);
  const Expr* call = stmt->items[1].expr.get();
  EXPECT_EQ(call->kind, ExprKind::kFunction);
  EXPECT_EQ(call->func_name, "get_json_object");
  ASSERT_EQ(call->children.size(), 2u);
  EXPECT_EQ(call->children[1]->literal.string_value(), "$.item_id");
  ASSERT_NE(stmt->where, nullptr);
  // BETWEEN desugars to (date >= lo AND date <= hi).
  EXPECT_EQ(stmt->where->bin_op, BinaryOp::kAnd);
  ASSERT_EQ(stmt->order_by.size(), 1u);
  EXPECT_FALSE(stmt->order_by[0].descending);
  EXPECT_EQ(stmt->limit, 1);
}

TEST(SqlParserTest, ParsesAggregatesAndGroupBy) {
  auto stmt = ParseSql(
      "SELECT k, COUNT(*), sum(v) FROM t GROUP BY k ORDER BY k DESC");
  ASSERT_TRUE(stmt.ok()) << stmt.status();
  EXPECT_EQ(stmt->items[1].expr->kind, ExprKind::kAggregate);
  EXPECT_EQ(stmt->items[1].expr->agg, AggKind::kCount);
  EXPECT_TRUE(stmt->items[1].expr->children.empty());  // COUNT(*)
  EXPECT_EQ(stmt->items[2].expr->agg, AggKind::kSum);
  ASSERT_EQ(stmt->group_by.size(), 1u);
  ASSERT_EQ(stmt->order_by.size(), 1u);
  EXPECT_TRUE(stmt->order_by[0].descending);
}

TEST(SqlParserTest, ParsesJoin) {
  auto stmt = ParseSql(
      "SELECT a.x FROM db.T a JOIN db.T b ON a.k = b.k AND a.j = b.j "
      "WHERE a.x > 5");
  ASSERT_TRUE(stmt.ok()) << stmt.status();
  ASSERT_TRUE(stmt->join.has_value());
  EXPECT_EQ(stmt->from.alias, "a");
  EXPECT_EQ(stmt->join->alias, "b");
  ASSERT_NE(stmt->join_condition, nullptr);
  ASSERT_NE(stmt->where, nullptr);
}

TEST(SqlParserTest, OperatorPrecedence) {
  auto stmt = ParseSql("SELECT 1 + 2 * 3 FROM t");
  ASSERT_TRUE(stmt.ok());
  // Must parse as 1 + (2 * 3).
  const Expr* e = stmt->items[0].expr.get();
  EXPECT_EQ(e->bin_op, BinaryOp::kAdd);
  EXPECT_EQ(e->children[1]->bin_op, BinaryOp::kMul);

  auto cmp = ParseSql("SELECT x FROM t WHERE a = 1 OR b = 2 AND c = 3");
  ASSERT_TRUE(cmp.ok());
  // OR is the top-level node: a=1 OR (b=2 AND c=3).
  EXPECT_EQ(cmp->where->bin_op, BinaryOp::kOr);
}

TEST(SqlParserTest, IsNullAndNot) {
  auto stmt = ParseSql("SELECT x FROM t WHERE x IS NOT NULL AND NOT y IS NULL");
  ASSERT_TRUE(stmt.ok()) << stmt.status();
  EXPECT_EQ(stmt->where->bin_op, BinaryOp::kAnd);
  EXPECT_EQ(stmt->where->children[0]->un_op, UnaryOp::kIsNotNull);
  EXPECT_EQ(stmt->where->children[1]->un_op, UnaryOp::kNot);
}

TEST(SqlParserTest, StringEscapes) {
  auto stmt = ParseSql("SELECT x FROM t WHERE s = 'it''s'");
  ASSERT_TRUE(stmt.ok());
  EXPECT_EQ(stmt->where->children[1]->literal.string_value(), "it's");
}

// ---------- Expression evaluation unit tests ----------

TEST(ExprEvalTest, ArithmeticAndComparison) {
  EvalContext ctx;  // no batch: only literals
  auto eval = [&](ExprPtr e) { return EvaluateExpr(*e, ctx); };

  EXPECT_EQ(eval(Expr::Binary(BinaryOp::kAdd,
                              Expr::Literal(Value::Int64(2)),
                              Expr::Literal(Value::Int64(3))))
                ->int64_value(),
            5);
  EXPECT_DOUBLE_EQ(eval(Expr::Binary(BinaryOp::kDiv,
                                     Expr::Literal(Value::Int64(7)),
                                     Expr::Literal(Value::Int64(2))))
                       ->double_value(),
                   3.5);
  EXPECT_TRUE(eval(Expr::Binary(BinaryOp::kLt,
                                Expr::Literal(Value::Int64(1)),
                                Expr::Literal(Value::Double(1.5))))
                  ->bool_value());
  // Division by zero yields NULL, not a crash.
  EXPECT_TRUE(eval(Expr::Binary(BinaryOp::kDiv,
                                Expr::Literal(Value::Int64(1)),
                                Expr::Literal(Value::Int64(0))))
                  ->is_null());
  // NULL propagates through comparisons.
  EXPECT_TRUE(eval(Expr::Binary(BinaryOp::kEq, Expr::Literal(Value::Null()),
                                Expr::Literal(Value::Int64(1))))
                  ->is_null());
}

TEST(ExprEvalTest, BooleanLogic) {
  EvalContext ctx;
  auto T = [] { return Expr::Literal(Value::Bool(true)); };
  auto F = [] { return Expr::Literal(Value::Bool(false)); };
  EXPECT_TRUE(
      EvaluateExpr(*Expr::Binary(BinaryOp::kOr, F(), T()), ctx)->bool_value());
  EXPECT_FALSE(
      EvaluateExpr(*Expr::Binary(BinaryOp::kAnd, T(), F()), ctx)->bool_value());
  EXPECT_TRUE(EvaluateExpr(*Expr::Unary(UnaryOp::kNot, F()), ctx)->bool_value());
  EXPECT_TRUE(EvaluateExpr(*Expr::Unary(UnaryOp::kIsNull,
                                        Expr::Literal(Value::Null())),
                           ctx)
                  ->bool_value());
}

TEST(ExprEvalTest, UnboundColumnFails) {
  EvalContext ctx;
  auto e = Expr::ColumnRef("x");
  EXPECT_FALSE(EvaluateExpr(*e, ctx).ok());
}

TEST(ExprTest, CloneIsDeep) {
  ExprPtr original = Expr::Binary(BinaryOp::kAdd, Expr::ColumnRef("a"),
                                  Expr::Literal(Value::Int64(1)));
  ExprPtr copy = original->Clone();
  copy->children[0]->column = "b";
  EXPECT_EQ(original->children[0]->column, "a");
  EXPECT_EQ(original->ToString(), "(a + 1)");
}

TEST(ExprTest, ContainsAggregate) {
  ExprPtr agg = Expr::Binary(
      BinaryOp::kMul, Expr::Aggregate(AggKind::kSum, Expr::ColumnRef("x")),
      Expr::Literal(Value::Int64(2)));
  EXPECT_TRUE(agg->ContainsAggregate());
  EXPECT_FALSE(Expr::ColumnRef("x")->ContainsAggregate());
}

// ---------- End-to-end engine tests over a real warehouse ----------

class EngineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    warehouse_ = (std::filesystem::temp_directory_path() /
                  ("maxson_engine_test_" + std::to_string(::getpid())))
                     .string();
    ASSERT_TRUE(FileSystem::RemoveAll(warehouse_).ok());
    ASSERT_TRUE(catalog_.CreateDatabase("mydb").ok());

    // Table mydb.T: 2 part files of sales rows with a JSON payload column.
    Schema schema;
    schema.AddField("mall_id", TypeKind::kString);
    schema.AddField("date", TypeKind::kInt64);
    schema.AddField("sale_logs", TypeKind::kString);
    const std::string dir = warehouse_ + "/mydb/T";
    ASSERT_TRUE(FileSystem::MakeDirs(dir).ok());
    int row_id = 0;
    for (int file = 0; file < 2; ++file) {
      CorcWriterOptions options;
      options.rows_per_group = 4;
      CorcWriter writer(dir + "/" + FileSystem::PartFileName(file), schema,
                        options);
      ASSERT_TRUE(writer.Open().ok());
      for (int i = 0; i < 10; ++i, ++row_id) {
        const std::string json =
            "{\"item_id\":" + std::to_string(row_id) +
            ",\"item_name\":\"item" + std::to_string(row_id % 3) +
            "\",\"sale_count\":" + std::to_string(10 + row_id) +
            ",\"turnover\":" + std::to_string(row_id * 5) + "}";
        ASSERT_TRUE(writer
                        .AppendRow({Value::String("m" + std::to_string(file)),
                                    Value::Int64(20190101 + row_id % 3),
                                    Value::String(json)})
                        .ok());
      }
      ASSERT_TRUE(writer.Close().ok());
    }
    catalog::TableInfo info;
    info.database = "mydb";
    info.name = "T";
    info.schema = schema;
    info.location = dir;
    ASSERT_TRUE(catalog_.CreateTable(info).ok());
  }

  void TearDown() override {
    ASSERT_TRUE(FileSystem::RemoveAll(warehouse_).ok());
  }

  QueryResult MustExecute(QueryEngine* engine, const std::string& sql) {
    auto result = engine->Execute(sql);
    EXPECT_TRUE(result.ok()) << sql << " -> " << result.status();
    return result.ok() ? std::move(*result) : QueryResult{};
  }

  std::string warehouse_;
  catalog::Catalog catalog_;
};

TEST_F(EngineTest, SimpleProjection) {
  QueryEngine engine(&catalog_, EngineConfig{});
  QueryResult r = MustExecute(&engine, "SELECT mall_id, date FROM mydb.T");
  EXPECT_EQ(r.batch.num_rows(), 20u);
  EXPECT_EQ(r.batch.schema().field(0).name, "mall_id");
  EXPECT_EQ(r.batch.column(0).GetString(0), "m0");
}

TEST_F(EngineTest, FilterOnPlainColumn) {
  QueryEngine engine(&catalog_, EngineConfig{});
  QueryResult r = MustExecute(
      &engine, "SELECT mall_id FROM mydb.T WHERE mall_id = 'm1'");
  EXPECT_EQ(r.batch.num_rows(), 10u);
}

TEST_F(EngineTest, GetJsonObjectProjection) {
  QueryEngine engine(&catalog_, EngineConfig{});
  QueryResult r = MustExecute(
      &engine,
      "SELECT get_json_object(sale_logs, '$.item_id') AS item_id FROM mydb.T");
  ASSERT_EQ(r.batch.num_rows(), 20u);
  EXPECT_EQ(r.batch.column(0).GetValue(0).ToString(), "0");
  EXPECT_EQ(r.batch.column(0).GetValue(19).ToString(), "19");
  EXPECT_GT(r.metrics.parse_seconds, 0.0);
  EXPECT_EQ(r.metrics.parse.records_parsed, 20u);
}

TEST_F(EngineTest, GetJsonObjectMisonBackendAgrees) {
  QueryEngine dom(&catalog_, EngineConfig{JsonBackend::kDom, "mydb"});
  EngineConfig mison_config;
  mison_config.json_backend = JsonBackend::kMison;
  QueryEngine mison(&catalog_, mison_config);
  const std::string sql =
      "SELECT get_json_object(sale_logs, '$.item_name') AS n FROM mydb.T";
  QueryResult a = MustExecute(&dom, sql);
  QueryResult b = MustExecute(&mison, sql);
  ASSERT_EQ(a.batch.num_rows(), b.batch.num_rows());
  for (size_t i = 0; i < a.batch.num_rows(); ++i) {
    EXPECT_EQ(a.batch.column(0).GetValue(i).ToString(),
              b.batch.column(0).GetValue(i).ToString());
  }
}

TEST_F(EngineTest, WhereOverJsonValue) {
  QueryEngine engine(&catalog_, EngineConfig{});
  QueryResult r = MustExecute(
      &engine,
      "SELECT get_json_object(sale_logs, '$.item_id') FROM mydb.T "
      "WHERE to_int(get_json_object(sale_logs, '$.turnover')) >= 50");
  // turnover = row_id * 5 >= 50 -> row_id >= 10, i.e. 10 rows.
  EXPECT_EQ(r.batch.num_rows(), 10u);
}

TEST_F(EngineTest, GroupByWithAggregates) {
  QueryEngine engine(&catalog_, EngineConfig{});
  QueryResult r = MustExecute(
      &engine,
      "SELECT get_json_object(sale_logs, '$.item_name') AS name, COUNT(*) AS "
      "cnt, sum(to_int(get_json_object(sale_logs, '$.sale_count'))) AS total "
      "FROM mydb.T GROUP BY get_json_object(sale_logs, '$.item_name') "
      "ORDER BY name");
  ASSERT_EQ(r.batch.num_rows(), 3u);  // item0, item1, item2
  EXPECT_EQ(r.batch.column(0).GetValue(0).ToString(), "item0");
  // 20 rows, names cycle with period 3: item0 gets rows 0,3,...,18 -> 7 rows.
  EXPECT_EQ(r.batch.column(1).GetValue(0).int64_value(), 7);
  EXPECT_EQ(r.batch.column(1).GetValue(1).int64_value(), 7);
  EXPECT_EQ(r.batch.column(1).GetValue(2).int64_value(), 6);
}

TEST_F(EngineTest, CountStarWithoutColumnReferences) {
  // Regression: a scan referencing no columns must still see every row.
  QueryEngine engine(&catalog_, EngineConfig{});
  QueryResult r = MustExecute(&engine, "SELECT COUNT(*) FROM mydb.T");
  ASSERT_EQ(r.batch.num_rows(), 1u);
  EXPECT_EQ(r.batch.column(0).GetValue(0).int64_value(), 20);
}

TEST_F(EngineTest, AggregateWithoutGroupBy) {
  QueryEngine engine(&catalog_, EngineConfig{});
  QueryResult r = MustExecute(
      &engine,
      "SELECT COUNT(*), min(date), max(date), avg(date) FROM mydb.T");
  ASSERT_EQ(r.batch.num_rows(), 1u);
  EXPECT_EQ(r.batch.column(0).GetValue(0).int64_value(), 20);
  EXPECT_EQ(r.batch.column(1).GetValue(0).int64_value(), 20190101);
  EXPECT_EQ(r.batch.column(2).GetValue(0).int64_value(), 20190103);
}

TEST_F(EngineTest, OrderByAndLimit) {
  QueryEngine engine(&catalog_, EngineConfig{});
  QueryResult r = MustExecute(
      &engine,
      "SELECT get_json_object(sale_logs, '$.item_id') AS id FROM mydb.T "
      "ORDER BY to_int(get_json_object(sale_logs, '$.item_id')) DESC LIMIT 3");
  ASSERT_EQ(r.batch.num_rows(), 3u);
  EXPECT_EQ(r.batch.column(0).GetValue(0).ToString(), "19");
  EXPECT_EQ(r.batch.column(0).GetValue(1).ToString(), "18");
  EXPECT_EQ(r.batch.column(0).GetValue(2).ToString(), "17");
}

TEST_F(EngineTest, SelfEquiJoin) {
  QueryEngine engine(&catalog_, EngineConfig{});
  // Join on item_name: each name bucket has 7/7/6 rows across 20 rows,
  // so the join yields 7*7 + 7*7 + 6*6 = 134 pairs.
  QueryResult r = MustExecute(
      &engine,
      "SELECT a.mall_id FROM mydb.T a JOIN mydb.T b ON "
      "get_json_object(a.sale_logs, '$.item_name') = "
      "get_json_object(b.sale_logs, '$.item_name')");
  EXPECT_EQ(r.batch.num_rows(), 134u);
}

TEST_F(EngineTest, SargPushdownReducesBytesRead) {
  QueryEngine engine(&catalog_, EngineConfig{});
  QueryResult all = MustExecute(&engine, "SELECT date FROM mydb.T");
  QueryResult none = MustExecute(
      &engine, "SELECT date FROM mydb.T WHERE date > 99999999");
  EXPECT_EQ(none.batch.num_rows(), 0u);
  // All row groups excluded via statistics: nothing read.
  EXPECT_EQ(none.metrics.read.rows_read, 0u);
  EXPECT_GT(all.metrics.read.rows_read, 0u);
  EXPECT_LT(none.metrics.read.bytes_read, all.metrics.read.bytes_read);
}

TEST_F(EngineTest, DefaultDatabaseResolution) {
  EngineConfig config;
  config.default_database = "mydb";
  QueryEngine engine(&catalog_, config);
  QueryResult r = MustExecute(&engine, "SELECT mall_id FROM T LIMIT 5");
  EXPECT_EQ(r.batch.num_rows(), 5u);
}

TEST_F(EngineTest, ErrorsSurfaceCleanly) {
  QueryEngine engine(&catalog_, EngineConfig{});
  EXPECT_EQ(engine.Execute("SELECT x FROM mydb.missing").status().code(),
            StatusCode::kNotFound);
  EXPECT_EQ(engine.Execute("SELECT nosuchcol FROM mydb.T").status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(engine.Execute("SELECT nosuchfunc(mall_id) FROM mydb.T")
                .status()
                .code(),
            StatusCode::kInvalidArgument);
  EXPECT_FALSE(engine.Execute("garbage").ok());
}

TEST_F(EngineTest, PlanExposesScanColumns) {
  QueryEngine engine(&catalog_, EngineConfig{});
  auto plan = engine.Plan(
      "SELECT get_json_object(sale_logs, '$.item_id') FROM mydb.T "
      "WHERE date = 20190101");
  ASSERT_TRUE(plan.ok()) << plan.status();
  // Scan must read exactly the referenced columns.
  ASSERT_EQ(plan->scan.columns.size(), 2u);
  EXPECT_EQ(plan->scan.columns[0], "date");
  EXPECT_EQ(plan->scan.columns[1], "sale_logs");
  // The date predicate must be extracted as a raw SARG.
  ASSERT_EQ(plan->scan.raw_sarg.leaves().size(), 1u);
  EXPECT_EQ(plan->scan.raw_sarg.leaves()[0].column, "date");
}

TEST_F(EngineTest, MetricsBreakdownIsConsistent) {
  QueryEngine engine(&catalog_, EngineConfig{});
  QueryResult r = MustExecute(
      &engine,
      "SELECT get_json_object(sale_logs, '$.item_id') FROM mydb.T");
  EXPECT_GE(r.metrics.read_seconds, 0.0);
  EXPECT_GT(r.metrics.parse_seconds, 0.0);
  EXPECT_GE(r.metrics.compute_seconds, 0.0);
  EXPECT_GT(r.metrics.read.bytes_read, 0u);
  EXPECT_EQ(r.metrics.parse.records_parsed, 20u);
}

}  // namespace
}  // namespace maxson::engine
