#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <string>

#include "common/random.h"
#include "gtest/gtest.h"
#include "storage/column_vector.h"
#include "storage/corc_format.h"
#include "storage/corc_reader.h"
#include "storage/corc_writer.h"
#include "storage/file_system.h"
#include "storage/record_batch.h"
#include "storage/sarg.h"
#include "storage/schema.h"
#include "storage/types.h"

namespace maxson::storage {
namespace {

class TempDir {
 public:
  TempDir() {
    static int counter = 0;
    dir_ = std::filesystem::temp_directory_path() /
           ("maxson_storage_test_" + std::to_string(::getpid()) + "_" +
            std::to_string(counter++));
    std::filesystem::create_directories(dir_);
  }
  ~TempDir() { std::filesystem::remove_all(dir_); }
  std::string path(const std::string& name) const {
    return (dir_ / name).string();
  }
  std::string dir() const { return dir_.string(); }

 private:
  std::filesystem::path dir_;
};

TEST(ValueTest, NullOrderingAndEquality) {
  EXPECT_TRUE(Value::Null().is_null());
  EXPECT_EQ(Value::Null().Compare(Value::Null()), 0);
  EXPECT_LT(Value::Null().Compare(Value::Int64(0)), 0);
  EXPECT_GT(Value::Int64(0).Compare(Value::Null()), 0);
}

TEST(ValueTest, NumericWideningComparison) {
  EXPECT_EQ(Value::Int64(2).Compare(Value::Double(2.0)), 0);
  EXPECT_LT(Value::Int64(2).Compare(Value::Double(2.5)), 0);
  EXPECT_GT(Value::Double(3.1).Compare(Value::Int64(3)), 0);
}

TEST(ValueTest, StringCoercionToDouble) {
  EXPECT_DOUBLE_EQ(Value::String("2.5").AsDouble(), 2.5);
  EXPECT_DOUBLE_EQ(Value::String("junk").AsDouble(), 0.0);
  EXPECT_DOUBLE_EQ(Value::Bool(true).AsDouble(), 1.0);
}

TEST(ValueTest, ToStringRendering) {
  EXPECT_EQ(Value::Null().ToString(), "NULL");
  EXPECT_EQ(Value::Int64(-5).ToString(), "-5");
  EXPECT_EQ(Value::Bool(false).ToString(), "false");
  EXPECT_EQ(Value::String("x").ToString(), "x");
}

TEST(ColumnVectorTest, AppendAndGetEachType) {
  ColumnVector ints(TypeKind::kInt64);
  ints.AppendInt64(1);
  ints.AppendNull();
  ints.AppendInt64(3);
  ASSERT_EQ(ints.size(), 3u);
  EXPECT_EQ(ints.GetInt64(0), 1);
  EXPECT_TRUE(ints.IsNull(1));
  EXPECT_EQ(ints.GetValue(2), Value::Int64(3));

  ColumnVector strs(TypeKind::kString);
  strs.AppendString("a");
  strs.AppendNull();
  EXPECT_EQ(strs.GetValue(0), Value::String("a"));
  EXPECT_TRUE(strs.GetValue(1).is_null());
}

TEST(ColumnVectorTest, AppendValueCoerces) {
  ColumnVector doubles(TypeKind::kDouble);
  doubles.AppendValue(Value::Int64(4));
  EXPECT_DOUBLE_EQ(doubles.GetDouble(0), 4.0);

  ColumnVector strs(TypeKind::kString);
  strs.AppendValue(Value::Int64(7));
  EXPECT_EQ(strs.GetString(0), "7");
}

TEST(RecordBatchTest, RowRoundTrip) {
  Schema schema;
  schema.AddField("id", TypeKind::kInt64);
  schema.AddField("name", TypeKind::kString);
  RecordBatch batch(schema);
  batch.AppendRow({Value::Int64(1), Value::String("a")});
  batch.AppendRow({Value::Null(), Value::String("b")});
  ASSERT_EQ(batch.num_rows(), 2u);
  EXPECT_EQ(batch.GetRow(0)[0], Value::Int64(1));
  EXPECT_TRUE(batch.GetRow(1)[0].is_null());
  EXPECT_EQ(batch.GetRow(1)[1], Value::String("b"));
}

TEST(ColumnStatsTest, TracksMinMaxAndNulls) {
  ColumnStats stats;
  stats.Update(Value::Int64(5));
  stats.Update(Value::Null());
  stats.Update(Value::Int64(-2));
  stats.Update(Value::Int64(9));
  EXPECT_EQ(stats.min, Value::Int64(-2));
  EXPECT_EQ(stats.max, Value::Int64(9));
  EXPECT_EQ(stats.null_count, 1u);
  EXPECT_EQ(stats.value_count, 4u);
  EXPECT_FALSE(stats.all_null());
}

struct SargCase {
  SargOp op;
  int64_t literal;
  bool expect_maybe;  // against stats min=10 max=20 nulls=2
};

class SargLeafTest : public ::testing::TestWithParam<SargCase> {};

TEST_P(SargLeafTest, EvaluatesAgainstStats) {
  ColumnStats stats;
  stats.Update(Value::Int64(10));
  stats.Update(Value::Int64(20));
  stats.Update(Value::Null());
  stats.Update(Value::Null());
  const SargCase& c = GetParam();
  SargLeaf leaf{"col", c.op, Value::Int64(c.literal)};
  const SargResult result = SearchArgument::EvaluateLeaf(leaf, stats);
  EXPECT_EQ(result == SargResult::kMaybe, c.expect_maybe)
      << "op=" << static_cast<int>(c.op) << " lit=" << c.literal;
}

INSTANTIATE_TEST_SUITE_P(
    Cases, SargLeafTest,
    ::testing::Values(SargCase{SargOp::kEq, 15, true},
                      SargCase{SargOp::kEq, 9, false},
                      SargCase{SargOp::kEq, 21, false},
                      SargCase{SargOp::kEq, 10, true},
                      SargCase{SargOp::kNe, 15, true},
                      SargCase{SargOp::kLt, 10, false},
                      SargCase{SargOp::kLt, 11, true},
                      SargCase{SargOp::kLe, 10, true},
                      SargCase{SargOp::kLe, 9, false},
                      SargCase{SargOp::kGt, 20, false},
                      SargCase{SargOp::kGt, 19, true},
                      SargCase{SargOp::kGe, 20, true},
                      SargCase{SargOp::kGe, 21, false}));

TEST(SargTest, NullPredicates) {
  ColumnStats with_nulls;
  with_nulls.Update(Value::Int64(1));
  with_nulls.Update(Value::Null());
  ColumnStats no_nulls;
  no_nulls.Update(Value::Int64(1));
  ColumnStats all_null;
  all_null.Update(Value::Null());

  SargLeaf is_null{"c", SargOp::kIsNull, Value::Null()};
  SargLeaf not_null{"c", SargOp::kIsNotNull, Value::Null()};
  EXPECT_EQ(SearchArgument::EvaluateLeaf(is_null, with_nulls),
            SargResult::kMaybe);
  EXPECT_EQ(SearchArgument::EvaluateLeaf(is_null, no_nulls), SargResult::kNo);
  EXPECT_EQ(SearchArgument::EvaluateLeaf(not_null, all_null), SargResult::kNo);
  // Comparisons never match all-null groups.
  SargLeaf eq{"c", SargOp::kEq, Value::Int64(1)};
  EXPECT_EQ(SearchArgument::EvaluateLeaf(eq, all_null), SargResult::kNo);
}

Schema TestSchema() {
  Schema schema;
  schema.AddField("id", TypeKind::kInt64);
  schema.AddField("score", TypeKind::kDouble);
  schema.AddField("name", TypeKind::kString);
  schema.AddField("flag", TypeKind::kBool);
  return schema;
}

TEST(CorcRoundTripTest, WriteReadAllTypes) {
  TempDir tmp;
  const std::string path = tmp.path("t.corc");
  CorcWriterOptions options;
  options.rows_per_group = 8;
  CorcWriter writer(path, TestSchema(), options);
  ASSERT_TRUE(writer.Open().ok());
  const int kRows = 100;
  for (int i = 0; i < kRows; ++i) {
    std::vector<Value> row;
    row.push_back(i % 7 == 0 ? Value::Null() : Value::Int64(i));
    row.push_back(Value::Double(i * 0.5));
    row.push_back(Value::String("name-" + std::to_string(i)));
    row.push_back(Value::Bool(i % 2 == 0));
    ASSERT_TRUE(writer.AppendRow(row).ok());
  }
  ASSERT_TRUE(writer.Close().ok());

  CorcReader reader(path);
  ASSERT_TRUE(reader.Open().ok());
  EXPECT_EQ(reader.num_rows(), static_cast<uint64_t>(kRows));
  EXPECT_EQ(reader.schema(), TestSchema());
  ReadStats stats;
  auto batch = reader.ReadAll(&stats);
  ASSERT_TRUE(batch.ok()) << batch.status();
  ASSERT_EQ(batch->num_rows(), static_cast<size_t>(kRows));
  for (int i = 0; i < kRows; ++i) {
    if (i % 7 == 0) {
      EXPECT_TRUE(batch->column(0).IsNull(i));
    } else {
      EXPECT_EQ(batch->column(0).GetInt64(i), i);
    }
    EXPECT_DOUBLE_EQ(batch->column(1).GetDouble(i), i * 0.5);
    EXPECT_EQ(batch->column(2).GetString(i), "name-" + std::to_string(i));
    EXPECT_EQ(batch->column(3).GetBool(i), i % 2 == 0);
  }
  EXPECT_GT(stats.bytes_read, 0u);
  EXPECT_EQ(stats.rows_read, static_cast<uint64_t>(kRows));
}

TEST(CorcRoundTripTest, ColumnProjectionReadsOnlyRequestedColumns) {
  TempDir tmp;
  const std::string path = tmp.path("t.corc");
  CorcWriterOptions options;
  options.rows_per_group = 10;
  CorcWriter writer(path, TestSchema(), options);
  ASSERT_TRUE(writer.Open().ok());
  for (int i = 0; i < 30; ++i) {
    ASSERT_TRUE(writer
                    .AppendRow({Value::Int64(i), Value::Double(i),
                                Value::String(std::string(100, 'x')),
                                Value::Bool(true)})
                    .ok());
  }
  ASSERT_TRUE(writer.Close().ok());

  CorcReader reader(path);
  ASSERT_TRUE(reader.Open().ok());
  ReadStats narrow;
  auto only_id = reader.ReadStripe(0, {0}, std::nullopt, &narrow);
  ASSERT_TRUE(only_id.ok());
  EXPECT_EQ(only_id->num_columns(), 1u);
  EXPECT_EQ(only_id->schema().field(0).name, "id");

  ReadStats wide;
  auto all = reader.ReadStripe(0, {0, 1, 2, 3}, std::nullopt, &wide);
  ASSERT_TRUE(all.ok());
  // Projection must read far fewer bytes than the full scan (the string
  // column dominates).
  EXPECT_LT(narrow.bytes_read * 3, wide.bytes_read);
}

TEST(CorcRoundTripTest, SargSkipsRowGroups) {
  TempDir tmp;
  const std::string path = tmp.path("t.corc");
  CorcWriterOptions options;
  options.rows_per_group = 10;
  CorcWriter writer(path, TestSchema(), options);
  ASSERT_TRUE(writer.Open().ok());
  // ids ascend 0..99, so groups have disjoint [min,max] ranges.
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(writer
                    .AppendRow({Value::Int64(i), Value::Double(i),
                                Value::String("s"), Value::Bool(false)})
                    .ok());
  }
  ASSERT_TRUE(writer.Close().ok());

  CorcReader reader(path);
  ASSERT_TRUE(reader.Open().ok());
  SearchArgument sarg;
  sarg.AddLeaf(SargLeaf{"id", SargOp::kGt, Value::Int64(74)});
  auto include = reader.ComputeRowGroupInclusion(0, sarg);
  ASSERT_TRUE(include.ok());
  ASSERT_EQ(include->size(), 10u);
  int included = 0;
  for (bool b : *include) included += b ? 1 : 0;
  EXPECT_EQ(included, 3);  // groups [70..79], [80..89], [90..99]

  ReadStats stats;
  auto batch = reader.ReadStripe(0, {0}, *include, &stats);
  ASSERT_TRUE(batch.ok());
  EXPECT_EQ(batch->num_rows(), 30u);
  EXPECT_EQ(stats.row_groups_skipped, 7u);
  EXPECT_EQ(batch->column(0).GetInt64(0), 70);
}

TEST(CorcRoundTripTest, EmptySargIncludesEverything) {
  TempDir tmp;
  const std::string path = tmp.path("t.corc");
  CorcWriterOptions options;
  options.rows_per_group = 4;
  CorcWriter writer(path, TestSchema(), options);
  ASSERT_TRUE(writer.Open().ok());
  for (int i = 0; i < 9; ++i) {
    ASSERT_TRUE(writer
                    .AppendRow({Value::Int64(i), Value::Double(0),
                                Value::String(""), Value::Bool(false)})
                    .ok());
  }
  ASSERT_TRUE(writer.Close().ok());
  CorcReader reader(path);
  ASSERT_TRUE(reader.Open().ok());
  auto include = reader.ComputeRowGroupInclusion(0, SearchArgument());
  ASSERT_TRUE(include.ok());
  EXPECT_EQ(include->size(), 3u);  // ceil(9/4)
  for (bool b : *include) EXPECT_TRUE(b);
}

TEST(CorcRoundTripTest, MultipleStripes) {
  TempDir tmp;
  const std::string path = tmp.path("t.corc");
  CorcWriterOptions options;
  options.rows_per_group = 5;
  options.rows_per_stripe = 20;
  CorcWriter writer(path, TestSchema(), options);
  ASSERT_TRUE(writer.Open().ok());
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(writer
                    .AppendRow({Value::Int64(i), Value::Double(i),
                                Value::String("r" + std::to_string(i)),
                                Value::Bool(i % 3 == 0)})
                    .ok());
  }
  ASSERT_TRUE(writer.Close().ok());
  CorcReader reader(path);
  ASSERT_TRUE(reader.Open().ok());
  EXPECT_EQ(reader.num_stripes(), 3u);  // 20 + 20 + 10
  auto all = reader.ReadAll(nullptr);
  ASSERT_TRUE(all.ok());
  ASSERT_EQ(all->num_rows(), 50u);
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(all->column(0).GetInt64(i), i);
    EXPECT_EQ(all->column(2).GetString(i), "r" + std::to_string(i));
  }
}

TEST(CorcReaderTest, RejectsGarbageFiles) {
  TempDir tmp;
  const std::string path = tmp.path("junk.corc");
  {
    std::ofstream f(path, std::ios::binary);
    f << "this is definitely not a CORC file, but long enough to check";
  }
  CorcReader reader(path);
  EXPECT_FALSE(reader.Open().ok());

  CorcReader missing(tmp.path("absent.corc"));
  EXPECT_FALSE(missing.Open().ok());
}

TEST(CorcPropertyTest, RandomizedRoundTrip) {
  // Property: arbitrary values written through the writer come back
  // identically, for several row-group sizes.
  for (uint32_t rows_per_group : {1u, 3u, 7u, 100u}) {
    TempDir tmp;
    const std::string path = tmp.path("t.corc");
    Rng rng(rows_per_group * 977);
    Schema schema;
    schema.AddField("i", TypeKind::kInt64);
    schema.AddField("s", TypeKind::kString);
    CorcWriterOptions options;
    options.rows_per_group = rows_per_group;
    CorcWriter writer(path, schema, options);
    ASSERT_TRUE(writer.Open().ok());
    std::vector<std::vector<Value>> expected;
    const int rows = 1 + static_cast<int>(rng.NextBounded(200));
    for (int i = 0; i < rows; ++i) {
      std::vector<Value> row;
      row.push_back(rng.NextBool(0.1) ? Value::Null()
                                      : Value::Int64(rng.NextInt(-1e9, 1e9)));
      std::string s;
      const size_t len = rng.NextBounded(20);
      for (size_t j = 0; j < len; ++j) {
        s.push_back(static_cast<char>(rng.NextInt(0, 255)));
      }
      row.push_back(rng.NextBool(0.1) ? Value::Null()
                                      : Value::String(std::move(s)));
      ASSERT_TRUE(writer.AppendRow(row).ok());
      expected.push_back(std::move(row));
    }
    ASSERT_TRUE(writer.Close().ok());

    CorcReader reader(path);
    ASSERT_TRUE(reader.Open().ok());
    auto batch = reader.ReadAll(nullptr);
    ASSERT_TRUE(batch.ok());
    ASSERT_EQ(batch->num_rows(), expected.size());
    for (size_t i = 0; i < expected.size(); ++i) {
      EXPECT_EQ(batch->GetRow(i)[0], expected[i][0]) << i;
      EXPECT_EQ(batch->GetRow(i)[1], expected[i][1]) << i;
    }
  }
}

TEST(FileSystemTest, SplitsAreSortedByName) {
  TempDir tmp;
  const std::string dir = tmp.path("table");
  ASSERT_TRUE(FileSystem::MakeDirs(dir).ok());
  // Create files out of order; listing must sort.
  for (int i : {3, 0, 2, 1}) {
    std::ofstream f(dir + "/" + FileSystem::PartFileName(i));
    f << "x";
  }
  std::ofstream ignored(dir + "/_metadata.json");
  ignored << "{}";
  auto splits = FileSystem::ListSplits(dir);
  ASSERT_TRUE(splits.ok());
  ASSERT_EQ(splits->size(), 4u);
  for (size_t i = 0; i < 4; ++i) {
    EXPECT_EQ((*splits)[i].index, i);
    EXPECT_NE((*splits)[i].path.find(FileSystem::PartFileName(i)),
              std::string::npos);
  }
}

TEST(FileSystemTest, DirectorySizeAndRemoveAll) {
  TempDir tmp;
  const std::string dir = tmp.path("d");
  ASSERT_TRUE(FileSystem::MakeDirs(dir + "/sub").ok());
  {
    std::ofstream f(dir + "/sub/file.bin", std::ios::binary);
    f << std::string(1000, 'a');
  }
  auto size = FileSystem::DirectorySize(dir);
  ASSERT_TRUE(size.ok());
  EXPECT_EQ(*size, 1000u);
  ASSERT_TRUE(FileSystem::RemoveAll(dir).ok());
  EXPECT_FALSE(FileSystem::Exists(dir));
  EXPECT_EQ(*FileSystem::DirectorySize(dir), 0u);
}

TEST(FileSystemTest, PartFileNamesSortNumerically) {
  EXPECT_EQ(FileSystem::PartFileName(0), "part-00000.corc");
  EXPECT_EQ(FileSystem::PartFileName(42), "part-00042.corc");
  EXPECT_LT(FileSystem::PartFileName(9), FileSystem::PartFileName(10));
}

TEST(FileSystemTest, PartFileNamesStaySortedPastPadWidth) {
  // %05zu saturates at 99999; the widened form must keep name order equal
  // to index order across the boundary or raw/cache row alignment breaks.
  EXPECT_EQ(FileSystem::PartFileName(99999), "part-99999.corc");
  EXPECT_LT(FileSystem::PartFileName(99999), FileSystem::PartFileName(100000));
  EXPECT_LT(FileSystem::PartFileName(100000),
            FileSystem::PartFileName(100001));
  EXPECT_LT(FileSystem::PartFileName(100001),
            FileSystem::PartFileName(12345678901ull));
  // Every name still ends in ".corc" so listings pick it up.
  EXPECT_NE(FileSystem::PartFileName(100000).find(".corc"),
            std::string::npos);
}

// ---- Durability: staged writes, checksums, malformed-tail hardening ----

std::string ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

void WriteFileBytes(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

/// Disarms the process-wide fault injector when the scope ends.
struct FaultGuard {
  ~FaultGuard() {
    EXPECT_TRUE(FaultInjector::Instance().Configure("off").ok());
  }
};

Schema IdSchema() {
  Schema schema;
  schema.AddField("id", TypeKind::kInt64);
  return schema;
}

TEST(CorcWriterTest, DestructorWithoutCloseAbortsStagedFile) {
  TempDir tmp;
  const std::string path = tmp.path("t.corc");
  {
    CorcWriter writer(path, IdSchema(), CorcWriterOptions{});
    ASSERT_TRUE(writer.Open().ok());
    ASSERT_TRUE(writer.AppendRow({Value::Int64(1)}).ok());
    // Writer leaves scope without Close(): nothing may be published.
  }
  EXPECT_FALSE(FileSystem::Exists(path));
  EXPECT_FALSE(FileSystem::Exists(path + ".tmp"));
}

TEST(CorcWriterTest, StagedFileIsInvisibleToSplitListings) {
  TempDir tmp;
  const std::string dir = tmp.path("table");
  ASSERT_TRUE(FileSystem::MakeDirs(dir).ok());
  CorcWriter writer(dir + "/" + FileSystem::PartFileName(0), IdSchema(),
                    CorcWriterOptions{});
  ASSERT_TRUE(writer.Open().ok());
  ASSERT_TRUE(writer.AppendRow({Value::Int64(1)}).ok());
  // Mid-write, only the ".tmp" staging file exists; readers see no splits.
  auto splits = FileSystem::ListSplits(dir);
  ASSERT_TRUE(splits.ok());
  EXPECT_TRUE(splits->empty());
  ASSERT_TRUE(writer.Close().ok());
  splits = FileSystem::ListSplits(dir);
  ASSERT_TRUE(splits.ok());
  EXPECT_EQ(splits->size(), 1u);
}

TEST(CorcWriterTest, FailedPublishLeavesNoFilesBehind) {
  // Fail each write-side op of a small file's lifecycle in turn; every
  // failure must surface through Close() and leave neither the final path
  // nor the staging file on disk.
  FaultGuard guard;
  for (int n = 1; n <= 8; ++n) {
    TempDir tmp;
    const std::string path = tmp.path("t.corc");
    ASSERT_TRUE(FaultInjector::Instance()
                    .Configure("fail:" + std::to_string(n))
                    .ok());
    Status status;
    {
      CorcWriter writer(path, IdSchema(), CorcWriterOptions{});
      status = writer.Open();
      if (status.ok()) status = writer.AppendRow({Value::Int64(7)});
      if (status.ok()) status = writer.Close();
      // Scope end: a writer whose Open failed cleans up via its destructor.
    }
    const bool tripped = FaultInjector::Instance().tripped();
    ASSERT_TRUE(FaultInjector::Instance().Configure("off").ok());
    if (!tripped) {
      // n exceeded the op count: the publish must have gone through whole.
      ASSERT_TRUE(status.ok()) << "n=" << n << ": " << status;
      EXPECT_TRUE(FileSystem::Exists(path)) << "n=" << n;
      CorcReader reader(path);
      EXPECT_TRUE(reader.Open().ok()) << "n=" << n;
      continue;
    }
    EXPECT_FALSE(status.ok()) << "n=" << n;
    // The staging file must never survive, and the final path may exist
    // only when the fault hit after the rename (e.g. the directory sync) —
    // in which case it is a complete, valid file, exactly as after a crash
    // between rename and directory flush.
    EXPECT_FALSE(FileSystem::Exists(path + ".tmp")) << "n=" << n;
    if (FileSystem::Exists(path)) {
      CorcReader reader(path);
      EXPECT_TRUE(reader.Open().ok()) << "n=" << n;
    }
  }
}

TEST(CorcWriterTest, TornWritePublishesNothingVisible) {
  FaultGuard guard;
  TempDir tmp;
  const std::string path = tmp.path("t.corc");
  ASSERT_TRUE(FaultInjector::Instance().Configure("torn:2").ok());
  CorcWriter writer(path, IdSchema(), CorcWriterOptions{});
  Status status = writer.Open();
  for (int i = 0; i < 10 && status.ok(); ++i) {
    status = writer.AppendRow({Value::Int64(i)});
  }
  if (status.ok()) status = writer.Close();
  ASSERT_TRUE(FaultInjector::Instance().Configure("off").ok());
  EXPECT_FALSE(status.ok());
  EXPECT_FALSE(FileSystem::Exists(path));
  EXPECT_FALSE(FileSystem::Exists(path + ".tmp"));
}

TEST(CorcReaderTest, EmptyAndShortFilesAreCorruption) {
  TempDir tmp;
  WriteFileBytes(tmp.path("empty.corc"), "");
  WriteFileBytes(tmp.path("short.corc"), "CORC2");
  WriteFileBytes(tmp.path("almost.corc"), "CORC2xxxCORC2");  // 13 < minimum
  for (const char* name : {"empty.corc", "short.corc", "almost.corc"}) {
    CorcReader reader(tmp.path(name));
    Status status = reader.Open();
    EXPECT_TRUE(status.IsCorruption()) << name << ": " << status;
  }
}

TEST(CorcReaderTest, HugeFooterLenIsCorruptionNotOverflow) {
  // A footer_len near UINT32_MAX must fail the bounds check cleanly; with
  // 32-bit arithmetic `len + tail` would wrap and pass.
  TempDir tmp;
  const std::string path = tmp.path("t.corc");
  CorcWriter writer(path, IdSchema(), CorcWriterOptions{});
  ASSERT_TRUE(writer.Open().ok());
  ASSERT_TRUE(writer.AppendRow({Value::Int64(1)}).ok());
  ASSERT_TRUE(writer.Close().ok());
  std::string bytes = ReadFileBytes(path);
  ASSERT_GT(bytes.size(), 13u);
  for (uint32_t len : {UINT32_MAX, UINT32_MAX - 12, UINT32_MAX - 13}) {
    std::string damaged = bytes;
    // v2 tail: [footer_crc u32][footer_len u32][magic 5].
    std::memcpy(damaged.data() + damaged.size() - 9, &len, 4);
    WriteFileBytes(path, damaged);
    CorcReader reader(path);
    Status status = reader.Open();
    EXPECT_TRUE(status.IsCorruption()) << "len=" << len << ": " << status;
  }
}

TEST(CorcReaderTest, FooterAndChunkChecksumsCatchBitFlips) {
  TempDir tmp;
  const std::string path = tmp.path("t.corc");
  CorcWriter writer(path, IdSchema(), CorcWriterOptions{});
  ASSERT_TRUE(writer.Open().ok());
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(writer.AppendRow({Value::Int64(i)}).ok());
  }
  ASSERT_TRUE(writer.Close().ok());
  const std::string pristine = ReadFileBytes(path);
  uint32_t footer_len = 0;
  std::memcpy(&footer_len, pristine.data() + pristine.size() - 9, 4);
  const size_t footer_start = pristine.size() - 13 - footer_len;

  {
    // Flip a bit inside the footer JSON: Open must fail its checksum.
    std::string damaged = pristine;
    damaged[footer_start + footer_len / 2] ^= 0x01;
    WriteFileBytes(path, damaged);
    CorcReader reader(path);
    Status status = reader.Open();
    EXPECT_TRUE(status.IsCorruption()) << status;
  }
  {
    // Flip a bit inside the data section: Open succeeds (the footer is
    // intact) but decoding the chunk must fail its checksum.
    std::string damaged = pristine;
    damaged[kCorcMagicLen + 1] ^= 0x01;
    WriteFileBytes(path, damaged);
    CorcReader reader(path);
    ASSERT_TRUE(reader.Open().ok());
    auto batch = reader.ReadAll(nullptr);
    ASSERT_FALSE(batch.ok());
    EXPECT_TRUE(batch.status().IsCorruption()) << batch.status();
  }
}

TEST(CorcReaderTest, ReadsVersion1FilesWithoutChecksums) {
  // Hand-build a v1 file (leading/trailing "CORC1", no footer CRC, no
  // per-group "crc" keys): readers must still load it — existing caches
  // written before the version bump stay usable.
  TempDir tmp;
  const std::string path = tmp.path("v1.corc");
  std::string bytes = "CORC1";
  // One row group of two non-null int64 rows: null bytes then values.
  bytes.append(2, '\0');
  const int64_t values[2] = {41, 42};
  bytes.append(reinterpret_cast<const char*>(values), 16);
  const std::string footer =
      "{\"fields\":[{\"name\":\"id\",\"type\":1}],\"rows_per_group\":100,"
      "\"num_rows\":2,\"stripes\":[{\"num_rows\":2,\"columns\":[{"
      "\"row_groups\":[{\"offset\":5,\"length\":18,\"min\":41,\"max\":42,"
      "\"nulls\":0,\"values\":2}]}]}]}";
  bytes += footer;
  const uint32_t footer_len = static_cast<uint32_t>(footer.size());
  bytes.append(reinterpret_cast<const char*>(&footer_len), 4);
  bytes += "CORC1";
  WriteFileBytes(path, bytes);

  CorcReader reader(path);
  ASSERT_TRUE(reader.Open().ok());
  EXPECT_EQ(reader.footer().version, kCorcVersionV1);
  EXPECT_EQ(reader.num_rows(), 2u);
  auto batch = reader.ReadAll(nullptr);
  ASSERT_TRUE(batch.ok()) << batch.status();
  ASSERT_EQ(batch->num_rows(), 2u);
  EXPECT_EQ(batch->column(0).GetInt64(0), 41);
  EXPECT_EQ(batch->column(0).GetInt64(1), 42);
}

TEST(CorcReaderTest, MixedMagicIsCorruption) {
  // A v2 head with a v1 tail (or vice versa) means the file was spliced or
  // torn across versions; both directions must be rejected.
  TempDir tmp;
  const std::string path = tmp.path("t.corc");
  CorcWriter writer(path, IdSchema(), CorcWriterOptions{});
  ASSERT_TRUE(writer.Open().ok());
  ASSERT_TRUE(writer.AppendRow({Value::Int64(1)}).ok());
  ASSERT_TRUE(writer.Close().ok());
  std::string bytes = ReadFileBytes(path);
  std::memcpy(bytes.data(), "CORC1", 5);  // head says v1, tail says v2
  WriteFileBytes(path, bytes);
  CorcReader reader(path);
  Status status = reader.Open();
  EXPECT_TRUE(status.IsCorruption()) << status;
}

TEST(FaultInjectorTest, SpecValidationAndOneShotShortRead) {
  FaultGuard guard;
  for (const char* bad : {"", "fail", "fail:", "fail:0", "fail:2x", "nope:1"}) {
    EXPECT_FALSE(FaultInjector::ValidateSpec(bad).ok()) << bad;
    EXPECT_FALSE(FaultInjector::Instance().Configure(bad).ok()) << bad;
  }
  EXPECT_TRUE(FaultInjector::ValidateSpec("off").ok());
  EXPECT_TRUE(FaultInjector::ValidateSpec("torn:12").ok());
  // A rejected Configure leaves the injector disarmed.
  EXPECT_EQ(FaultInjector::Instance().spec(), "off");
  EXPECT_FALSE(FaultInjector::Instance().enabled());

  ASSERT_TRUE(FaultInjector::Instance().Configure("short:2").ok());
  EXPECT_EQ(FaultInjector::Instance().OnRead(100), 100u);  // op 1
  EXPECT_EQ(FaultInjector::Instance().OnRead(100), 50u);   // op 2 trips
  EXPECT_EQ(FaultInjector::Instance().OnRead(100), 100u);  // one-shot
  EXPECT_TRUE(FaultInjector::Instance().tripped());
}

}  // namespace
}  // namespace maxson::storage
