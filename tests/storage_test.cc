#include <cstdio>
#include <filesystem>
#include <string>

#include "common/random.h"
#include "gtest/gtest.h"
#include "storage/column_vector.h"
#include "storage/corc_reader.h"
#include "storage/corc_writer.h"
#include "storage/file_system.h"
#include "storage/record_batch.h"
#include "storage/sarg.h"
#include "storage/schema.h"
#include "storage/types.h"

namespace maxson::storage {
namespace {

class TempDir {
 public:
  TempDir() {
    static int counter = 0;
    dir_ = std::filesystem::temp_directory_path() /
           ("maxson_storage_test_" + std::to_string(::getpid()) + "_" +
            std::to_string(counter++));
    std::filesystem::create_directories(dir_);
  }
  ~TempDir() { std::filesystem::remove_all(dir_); }
  std::string path(const std::string& name) const {
    return (dir_ / name).string();
  }
  std::string dir() const { return dir_.string(); }

 private:
  std::filesystem::path dir_;
};

TEST(ValueTest, NullOrderingAndEquality) {
  EXPECT_TRUE(Value::Null().is_null());
  EXPECT_EQ(Value::Null().Compare(Value::Null()), 0);
  EXPECT_LT(Value::Null().Compare(Value::Int64(0)), 0);
  EXPECT_GT(Value::Int64(0).Compare(Value::Null()), 0);
}

TEST(ValueTest, NumericWideningComparison) {
  EXPECT_EQ(Value::Int64(2).Compare(Value::Double(2.0)), 0);
  EXPECT_LT(Value::Int64(2).Compare(Value::Double(2.5)), 0);
  EXPECT_GT(Value::Double(3.1).Compare(Value::Int64(3)), 0);
}

TEST(ValueTest, StringCoercionToDouble) {
  EXPECT_DOUBLE_EQ(Value::String("2.5").AsDouble(), 2.5);
  EXPECT_DOUBLE_EQ(Value::String("junk").AsDouble(), 0.0);
  EXPECT_DOUBLE_EQ(Value::Bool(true).AsDouble(), 1.0);
}

TEST(ValueTest, ToStringRendering) {
  EXPECT_EQ(Value::Null().ToString(), "NULL");
  EXPECT_EQ(Value::Int64(-5).ToString(), "-5");
  EXPECT_EQ(Value::Bool(false).ToString(), "false");
  EXPECT_EQ(Value::String("x").ToString(), "x");
}

TEST(ColumnVectorTest, AppendAndGetEachType) {
  ColumnVector ints(TypeKind::kInt64);
  ints.AppendInt64(1);
  ints.AppendNull();
  ints.AppendInt64(3);
  ASSERT_EQ(ints.size(), 3u);
  EXPECT_EQ(ints.GetInt64(0), 1);
  EXPECT_TRUE(ints.IsNull(1));
  EXPECT_EQ(ints.GetValue(2), Value::Int64(3));

  ColumnVector strs(TypeKind::kString);
  strs.AppendString("a");
  strs.AppendNull();
  EXPECT_EQ(strs.GetValue(0), Value::String("a"));
  EXPECT_TRUE(strs.GetValue(1).is_null());
}

TEST(ColumnVectorTest, AppendValueCoerces) {
  ColumnVector doubles(TypeKind::kDouble);
  doubles.AppendValue(Value::Int64(4));
  EXPECT_DOUBLE_EQ(doubles.GetDouble(0), 4.0);

  ColumnVector strs(TypeKind::kString);
  strs.AppendValue(Value::Int64(7));
  EXPECT_EQ(strs.GetString(0), "7");
}

TEST(RecordBatchTest, RowRoundTrip) {
  Schema schema;
  schema.AddField("id", TypeKind::kInt64);
  schema.AddField("name", TypeKind::kString);
  RecordBatch batch(schema);
  batch.AppendRow({Value::Int64(1), Value::String("a")});
  batch.AppendRow({Value::Null(), Value::String("b")});
  ASSERT_EQ(batch.num_rows(), 2u);
  EXPECT_EQ(batch.GetRow(0)[0], Value::Int64(1));
  EXPECT_TRUE(batch.GetRow(1)[0].is_null());
  EXPECT_EQ(batch.GetRow(1)[1], Value::String("b"));
}

TEST(ColumnStatsTest, TracksMinMaxAndNulls) {
  ColumnStats stats;
  stats.Update(Value::Int64(5));
  stats.Update(Value::Null());
  stats.Update(Value::Int64(-2));
  stats.Update(Value::Int64(9));
  EXPECT_EQ(stats.min, Value::Int64(-2));
  EXPECT_EQ(stats.max, Value::Int64(9));
  EXPECT_EQ(stats.null_count, 1u);
  EXPECT_EQ(stats.value_count, 4u);
  EXPECT_FALSE(stats.all_null());
}

struct SargCase {
  SargOp op;
  int64_t literal;
  bool expect_maybe;  // against stats min=10 max=20 nulls=2
};

class SargLeafTest : public ::testing::TestWithParam<SargCase> {};

TEST_P(SargLeafTest, EvaluatesAgainstStats) {
  ColumnStats stats;
  stats.Update(Value::Int64(10));
  stats.Update(Value::Int64(20));
  stats.Update(Value::Null());
  stats.Update(Value::Null());
  const SargCase& c = GetParam();
  SargLeaf leaf{"col", c.op, Value::Int64(c.literal)};
  const SargResult result = SearchArgument::EvaluateLeaf(leaf, stats);
  EXPECT_EQ(result == SargResult::kMaybe, c.expect_maybe)
      << "op=" << static_cast<int>(c.op) << " lit=" << c.literal;
}

INSTANTIATE_TEST_SUITE_P(
    Cases, SargLeafTest,
    ::testing::Values(SargCase{SargOp::kEq, 15, true},
                      SargCase{SargOp::kEq, 9, false},
                      SargCase{SargOp::kEq, 21, false},
                      SargCase{SargOp::kEq, 10, true},
                      SargCase{SargOp::kNe, 15, true},
                      SargCase{SargOp::kLt, 10, false},
                      SargCase{SargOp::kLt, 11, true},
                      SargCase{SargOp::kLe, 10, true},
                      SargCase{SargOp::kLe, 9, false},
                      SargCase{SargOp::kGt, 20, false},
                      SargCase{SargOp::kGt, 19, true},
                      SargCase{SargOp::kGe, 20, true},
                      SargCase{SargOp::kGe, 21, false}));

TEST(SargTest, NullPredicates) {
  ColumnStats with_nulls;
  with_nulls.Update(Value::Int64(1));
  with_nulls.Update(Value::Null());
  ColumnStats no_nulls;
  no_nulls.Update(Value::Int64(1));
  ColumnStats all_null;
  all_null.Update(Value::Null());

  SargLeaf is_null{"c", SargOp::kIsNull, Value::Null()};
  SargLeaf not_null{"c", SargOp::kIsNotNull, Value::Null()};
  EXPECT_EQ(SearchArgument::EvaluateLeaf(is_null, with_nulls),
            SargResult::kMaybe);
  EXPECT_EQ(SearchArgument::EvaluateLeaf(is_null, no_nulls), SargResult::kNo);
  EXPECT_EQ(SearchArgument::EvaluateLeaf(not_null, all_null), SargResult::kNo);
  // Comparisons never match all-null groups.
  SargLeaf eq{"c", SargOp::kEq, Value::Int64(1)};
  EXPECT_EQ(SearchArgument::EvaluateLeaf(eq, all_null), SargResult::kNo);
}

Schema TestSchema() {
  Schema schema;
  schema.AddField("id", TypeKind::kInt64);
  schema.AddField("score", TypeKind::kDouble);
  schema.AddField("name", TypeKind::kString);
  schema.AddField("flag", TypeKind::kBool);
  return schema;
}

TEST(CorcRoundTripTest, WriteReadAllTypes) {
  TempDir tmp;
  const std::string path = tmp.path("t.corc");
  CorcWriterOptions options;
  options.rows_per_group = 8;
  CorcWriter writer(path, TestSchema(), options);
  ASSERT_TRUE(writer.Open().ok());
  const int kRows = 100;
  for (int i = 0; i < kRows; ++i) {
    std::vector<Value> row;
    row.push_back(i % 7 == 0 ? Value::Null() : Value::Int64(i));
    row.push_back(Value::Double(i * 0.5));
    row.push_back(Value::String("name-" + std::to_string(i)));
    row.push_back(Value::Bool(i % 2 == 0));
    ASSERT_TRUE(writer.AppendRow(row).ok());
  }
  ASSERT_TRUE(writer.Close().ok());

  CorcReader reader(path);
  ASSERT_TRUE(reader.Open().ok());
  EXPECT_EQ(reader.num_rows(), static_cast<uint64_t>(kRows));
  EXPECT_EQ(reader.schema(), TestSchema());
  ReadStats stats;
  auto batch = reader.ReadAll(&stats);
  ASSERT_TRUE(batch.ok()) << batch.status();
  ASSERT_EQ(batch->num_rows(), static_cast<size_t>(kRows));
  for (int i = 0; i < kRows; ++i) {
    if (i % 7 == 0) {
      EXPECT_TRUE(batch->column(0).IsNull(i));
    } else {
      EXPECT_EQ(batch->column(0).GetInt64(i), i);
    }
    EXPECT_DOUBLE_EQ(batch->column(1).GetDouble(i), i * 0.5);
    EXPECT_EQ(batch->column(2).GetString(i), "name-" + std::to_string(i));
    EXPECT_EQ(batch->column(3).GetBool(i), i % 2 == 0);
  }
  EXPECT_GT(stats.bytes_read, 0u);
  EXPECT_EQ(stats.rows_read, static_cast<uint64_t>(kRows));
}

TEST(CorcRoundTripTest, ColumnProjectionReadsOnlyRequestedColumns) {
  TempDir tmp;
  const std::string path = tmp.path("t.corc");
  CorcWriterOptions options;
  options.rows_per_group = 10;
  CorcWriter writer(path, TestSchema(), options);
  ASSERT_TRUE(writer.Open().ok());
  for (int i = 0; i < 30; ++i) {
    ASSERT_TRUE(writer
                    .AppendRow({Value::Int64(i), Value::Double(i),
                                Value::String(std::string(100, 'x')),
                                Value::Bool(true)})
                    .ok());
  }
  ASSERT_TRUE(writer.Close().ok());

  CorcReader reader(path);
  ASSERT_TRUE(reader.Open().ok());
  ReadStats narrow;
  auto only_id = reader.ReadStripe(0, {0}, std::nullopt, &narrow);
  ASSERT_TRUE(only_id.ok());
  EXPECT_EQ(only_id->num_columns(), 1u);
  EXPECT_EQ(only_id->schema().field(0).name, "id");

  ReadStats wide;
  auto all = reader.ReadStripe(0, {0, 1, 2, 3}, std::nullopt, &wide);
  ASSERT_TRUE(all.ok());
  // Projection must read far fewer bytes than the full scan (the string
  // column dominates).
  EXPECT_LT(narrow.bytes_read * 3, wide.bytes_read);
}

TEST(CorcRoundTripTest, SargSkipsRowGroups) {
  TempDir tmp;
  const std::string path = tmp.path("t.corc");
  CorcWriterOptions options;
  options.rows_per_group = 10;
  CorcWriter writer(path, TestSchema(), options);
  ASSERT_TRUE(writer.Open().ok());
  // ids ascend 0..99, so groups have disjoint [min,max] ranges.
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(writer
                    .AppendRow({Value::Int64(i), Value::Double(i),
                                Value::String("s"), Value::Bool(false)})
                    .ok());
  }
  ASSERT_TRUE(writer.Close().ok());

  CorcReader reader(path);
  ASSERT_TRUE(reader.Open().ok());
  SearchArgument sarg;
  sarg.AddLeaf(SargLeaf{"id", SargOp::kGt, Value::Int64(74)});
  auto include = reader.ComputeRowGroupInclusion(0, sarg);
  ASSERT_TRUE(include.ok());
  ASSERT_EQ(include->size(), 10u);
  int included = 0;
  for (bool b : *include) included += b ? 1 : 0;
  EXPECT_EQ(included, 3);  // groups [70..79], [80..89], [90..99]

  ReadStats stats;
  auto batch = reader.ReadStripe(0, {0}, *include, &stats);
  ASSERT_TRUE(batch.ok());
  EXPECT_EQ(batch->num_rows(), 30u);
  EXPECT_EQ(stats.row_groups_skipped, 7u);
  EXPECT_EQ(batch->column(0).GetInt64(0), 70);
}

TEST(CorcRoundTripTest, EmptySargIncludesEverything) {
  TempDir tmp;
  const std::string path = tmp.path("t.corc");
  CorcWriterOptions options;
  options.rows_per_group = 4;
  CorcWriter writer(path, TestSchema(), options);
  ASSERT_TRUE(writer.Open().ok());
  for (int i = 0; i < 9; ++i) {
    ASSERT_TRUE(writer
                    .AppendRow({Value::Int64(i), Value::Double(0),
                                Value::String(""), Value::Bool(false)})
                    .ok());
  }
  ASSERT_TRUE(writer.Close().ok());
  CorcReader reader(path);
  ASSERT_TRUE(reader.Open().ok());
  auto include = reader.ComputeRowGroupInclusion(0, SearchArgument());
  ASSERT_TRUE(include.ok());
  EXPECT_EQ(include->size(), 3u);  // ceil(9/4)
  for (bool b : *include) EXPECT_TRUE(b);
}

TEST(CorcRoundTripTest, MultipleStripes) {
  TempDir tmp;
  const std::string path = tmp.path("t.corc");
  CorcWriterOptions options;
  options.rows_per_group = 5;
  options.rows_per_stripe = 20;
  CorcWriter writer(path, TestSchema(), options);
  ASSERT_TRUE(writer.Open().ok());
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(writer
                    .AppendRow({Value::Int64(i), Value::Double(i),
                                Value::String("r" + std::to_string(i)),
                                Value::Bool(i % 3 == 0)})
                    .ok());
  }
  ASSERT_TRUE(writer.Close().ok());
  CorcReader reader(path);
  ASSERT_TRUE(reader.Open().ok());
  EXPECT_EQ(reader.num_stripes(), 3u);  // 20 + 20 + 10
  auto all = reader.ReadAll(nullptr);
  ASSERT_TRUE(all.ok());
  ASSERT_EQ(all->num_rows(), 50u);
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(all->column(0).GetInt64(i), i);
    EXPECT_EQ(all->column(2).GetString(i), "r" + std::to_string(i));
  }
}

TEST(CorcReaderTest, RejectsGarbageFiles) {
  TempDir tmp;
  const std::string path = tmp.path("junk.corc");
  {
    std::ofstream f(path, std::ios::binary);
    f << "this is definitely not a CORC file, but long enough to check";
  }
  CorcReader reader(path);
  EXPECT_FALSE(reader.Open().ok());

  CorcReader missing(tmp.path("absent.corc"));
  EXPECT_FALSE(missing.Open().ok());
}

TEST(CorcPropertyTest, RandomizedRoundTrip) {
  // Property: arbitrary values written through the writer come back
  // identically, for several row-group sizes.
  for (uint32_t rows_per_group : {1u, 3u, 7u, 100u}) {
    TempDir tmp;
    const std::string path = tmp.path("t.corc");
    Rng rng(rows_per_group * 977);
    Schema schema;
    schema.AddField("i", TypeKind::kInt64);
    schema.AddField("s", TypeKind::kString);
    CorcWriterOptions options;
    options.rows_per_group = rows_per_group;
    CorcWriter writer(path, schema, options);
    ASSERT_TRUE(writer.Open().ok());
    std::vector<std::vector<Value>> expected;
    const int rows = 1 + static_cast<int>(rng.NextBounded(200));
    for (int i = 0; i < rows; ++i) {
      std::vector<Value> row;
      row.push_back(rng.NextBool(0.1) ? Value::Null()
                                      : Value::Int64(rng.NextInt(-1e9, 1e9)));
      std::string s;
      const size_t len = rng.NextBounded(20);
      for (size_t j = 0; j < len; ++j) {
        s.push_back(static_cast<char>(rng.NextInt(0, 255)));
      }
      row.push_back(rng.NextBool(0.1) ? Value::Null()
                                      : Value::String(std::move(s)));
      ASSERT_TRUE(writer.AppendRow(row).ok());
      expected.push_back(std::move(row));
    }
    ASSERT_TRUE(writer.Close().ok());

    CorcReader reader(path);
    ASSERT_TRUE(reader.Open().ok());
    auto batch = reader.ReadAll(nullptr);
    ASSERT_TRUE(batch.ok());
    ASSERT_EQ(batch->num_rows(), expected.size());
    for (size_t i = 0; i < expected.size(); ++i) {
      EXPECT_EQ(batch->GetRow(i)[0], expected[i][0]) << i;
      EXPECT_EQ(batch->GetRow(i)[1], expected[i][1]) << i;
    }
  }
}

TEST(FileSystemTest, SplitsAreSortedByName) {
  TempDir tmp;
  const std::string dir = tmp.path("table");
  ASSERT_TRUE(FileSystem::MakeDirs(dir).ok());
  // Create files out of order; listing must sort.
  for (int i : {3, 0, 2, 1}) {
    std::ofstream f(dir + "/" + FileSystem::PartFileName(i));
    f << "x";
  }
  std::ofstream ignored(dir + "/_metadata.json");
  ignored << "{}";
  auto splits = FileSystem::ListSplits(dir);
  ASSERT_TRUE(splits.ok());
  ASSERT_EQ(splits->size(), 4u);
  for (size_t i = 0; i < 4; ++i) {
    EXPECT_EQ((*splits)[i].index, i);
    EXPECT_NE((*splits)[i].path.find(FileSystem::PartFileName(i)),
              std::string::npos);
  }
}

TEST(FileSystemTest, DirectorySizeAndRemoveAll) {
  TempDir tmp;
  const std::string dir = tmp.path("d");
  ASSERT_TRUE(FileSystem::MakeDirs(dir + "/sub").ok());
  {
    std::ofstream f(dir + "/sub/file.bin", std::ios::binary);
    f << std::string(1000, 'a');
  }
  auto size = FileSystem::DirectorySize(dir);
  ASSERT_TRUE(size.ok());
  EXPECT_EQ(*size, 1000u);
  ASSERT_TRUE(FileSystem::RemoveAll(dir).ok());
  EXPECT_FALSE(FileSystem::Exists(dir));
  EXPECT_EQ(*FileSystem::DirectorySize(dir), 0u);
}

TEST(FileSystemTest, PartFileNamesSortNumerically) {
  EXPECT_EQ(FileSystem::PartFileName(0), "part-00000.corc");
  EXPECT_EQ(FileSystem::PartFileName(42), "part-00042.corc");
  EXPECT_LT(FileSystem::PartFileName(9), FileSystem::PartFileName(10));
}

}  // namespace
}  // namespace maxson::storage
