#include <cctype>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <string>

#include "common/random.h"
#include "gtest/gtest.h"
#include "simd/kernels.h"
#include "storage/column_vector.h"
#include "storage/corc_format.h"
#include "storage/corc_reader.h"
#include "storage/corc_writer.h"
#include "storage/encoding.h"
#include "storage/file_system.h"
#include "storage/record_batch.h"
#include "storage/sarg.h"
#include "storage/schema.h"
#include "storage/types.h"

namespace maxson::storage {
namespace {

class TempDir {
 public:
  TempDir() {
    static int counter = 0;
    dir_ = std::filesystem::temp_directory_path() /
           ("maxson_storage_test_" + std::to_string(::getpid()) + "_" +
            std::to_string(counter++));
    std::filesystem::create_directories(dir_);
  }
  ~TempDir() { std::filesystem::remove_all(dir_); }
  std::string path(const std::string& name) const {
    return (dir_ / name).string();
  }
  std::string dir() const { return dir_.string(); }

 private:
  std::filesystem::path dir_;
};

TEST(ValueTest, NullOrderingAndEquality) {
  EXPECT_TRUE(Value::Null().is_null());
  EXPECT_EQ(Value::Null().Compare(Value::Null()), 0);
  EXPECT_LT(Value::Null().Compare(Value::Int64(0)), 0);
  EXPECT_GT(Value::Int64(0).Compare(Value::Null()), 0);
}

TEST(ValueTest, NumericWideningComparison) {
  EXPECT_EQ(Value::Int64(2).Compare(Value::Double(2.0)), 0);
  EXPECT_LT(Value::Int64(2).Compare(Value::Double(2.5)), 0);
  EXPECT_GT(Value::Double(3.1).Compare(Value::Int64(3)), 0);
}

TEST(ValueTest, StringCoercionToDouble) {
  EXPECT_DOUBLE_EQ(Value::String("2.5").AsDouble(), 2.5);
  EXPECT_DOUBLE_EQ(Value::String("junk").AsDouble(), 0.0);
  EXPECT_DOUBLE_EQ(Value::Bool(true).AsDouble(), 1.0);
}

TEST(ValueTest, ToStringRendering) {
  EXPECT_EQ(Value::Null().ToString(), "NULL");
  EXPECT_EQ(Value::Int64(-5).ToString(), "-5");
  EXPECT_EQ(Value::Bool(false).ToString(), "false");
  EXPECT_EQ(Value::String("x").ToString(), "x");
}

TEST(ColumnVectorTest, AppendAndGetEachType) {
  ColumnVector ints(TypeKind::kInt64);
  ints.AppendInt64(1);
  ints.AppendNull();
  ints.AppendInt64(3);
  ASSERT_EQ(ints.size(), 3u);
  EXPECT_EQ(ints.GetInt64(0), 1);
  EXPECT_TRUE(ints.IsNull(1));
  EXPECT_EQ(ints.GetValue(2), Value::Int64(3));

  ColumnVector strs(TypeKind::kString);
  strs.AppendString("a");
  strs.AppendNull();
  EXPECT_EQ(strs.GetValue(0), Value::String("a"));
  EXPECT_TRUE(strs.GetValue(1).is_null());
}

TEST(ColumnVectorTest, AppendValueCoerces) {
  ColumnVector doubles(TypeKind::kDouble);
  doubles.AppendValue(Value::Int64(4));
  EXPECT_DOUBLE_EQ(doubles.GetDouble(0), 4.0);

  ColumnVector strs(TypeKind::kString);
  strs.AppendValue(Value::Int64(7));
  EXPECT_EQ(strs.GetString(0), "7");
}

TEST(RecordBatchTest, RowRoundTrip) {
  Schema schema;
  schema.AddField("id", TypeKind::kInt64);
  schema.AddField("name", TypeKind::kString);
  RecordBatch batch(schema);
  batch.AppendRow({Value::Int64(1), Value::String("a")});
  batch.AppendRow({Value::Null(), Value::String("b")});
  ASSERT_EQ(batch.num_rows(), 2u);
  EXPECT_EQ(batch.GetRow(0)[0], Value::Int64(1));
  EXPECT_TRUE(batch.GetRow(1)[0].is_null());
  EXPECT_EQ(batch.GetRow(1)[1], Value::String("b"));
}

TEST(ColumnStatsTest, TracksMinMaxAndNulls) {
  ColumnStats stats;
  stats.Update(Value::Int64(5));
  stats.Update(Value::Null());
  stats.Update(Value::Int64(-2));
  stats.Update(Value::Int64(9));
  EXPECT_EQ(stats.min, Value::Int64(-2));
  EXPECT_EQ(stats.max, Value::Int64(9));
  EXPECT_EQ(stats.null_count, 1u);
  EXPECT_EQ(stats.value_count, 4u);
  EXPECT_FALSE(stats.all_null());
}

struct SargCase {
  SargOp op;
  int64_t literal;
  bool expect_maybe;  // against stats min=10 max=20 nulls=2
};

class SargLeafTest : public ::testing::TestWithParam<SargCase> {};

TEST_P(SargLeafTest, EvaluatesAgainstStats) {
  ColumnStats stats;
  stats.Update(Value::Int64(10));
  stats.Update(Value::Int64(20));
  stats.Update(Value::Null());
  stats.Update(Value::Null());
  const SargCase& c = GetParam();
  SargLeaf leaf{"col", c.op, Value::Int64(c.literal)};
  const SargResult result = SearchArgument::EvaluateLeaf(leaf, stats);
  EXPECT_EQ(result == SargResult::kMaybe, c.expect_maybe)
      << "op=" << static_cast<int>(c.op) << " lit=" << c.literal;
}

INSTANTIATE_TEST_SUITE_P(
    Cases, SargLeafTest,
    ::testing::Values(SargCase{SargOp::kEq, 15, true},
                      SargCase{SargOp::kEq, 9, false},
                      SargCase{SargOp::kEq, 21, false},
                      SargCase{SargOp::kEq, 10, true},
                      SargCase{SargOp::kNe, 15, true},
                      SargCase{SargOp::kLt, 10, false},
                      SargCase{SargOp::kLt, 11, true},
                      SargCase{SargOp::kLe, 10, true},
                      SargCase{SargOp::kLe, 9, false},
                      SargCase{SargOp::kGt, 20, false},
                      SargCase{SargOp::kGt, 19, true},
                      SargCase{SargOp::kGe, 20, true},
                      SargCase{SargOp::kGe, 21, false}));

TEST(SargTest, NullPredicates) {
  ColumnStats with_nulls;
  with_nulls.Update(Value::Int64(1));
  with_nulls.Update(Value::Null());
  ColumnStats no_nulls;
  no_nulls.Update(Value::Int64(1));
  ColumnStats all_null;
  all_null.Update(Value::Null());

  SargLeaf is_null{"c", SargOp::kIsNull, Value::Null()};
  SargLeaf not_null{"c", SargOp::kIsNotNull, Value::Null()};
  EXPECT_EQ(SearchArgument::EvaluateLeaf(is_null, with_nulls),
            SargResult::kMaybe);
  EXPECT_EQ(SearchArgument::EvaluateLeaf(is_null, no_nulls), SargResult::kNo);
  EXPECT_EQ(SearchArgument::EvaluateLeaf(not_null, all_null), SargResult::kNo);
  // Comparisons never match all-null groups.
  SargLeaf eq{"c", SargOp::kEq, Value::Int64(1)};
  EXPECT_EQ(SearchArgument::EvaluateLeaf(eq, all_null), SargResult::kNo);
}

Schema TestSchema() {
  Schema schema;
  schema.AddField("id", TypeKind::kInt64);
  schema.AddField("score", TypeKind::kDouble);
  schema.AddField("name", TypeKind::kString);
  schema.AddField("flag", TypeKind::kBool);
  return schema;
}

TEST(CorcRoundTripTest, WriteReadAllTypes) {
  TempDir tmp;
  const std::string path = tmp.path("t.corc");
  CorcWriterOptions options;
  options.rows_per_group = 8;
  CorcWriter writer(path, TestSchema(), options);
  ASSERT_TRUE(writer.Open().ok());
  const int kRows = 100;
  for (int i = 0; i < kRows; ++i) {
    std::vector<Value> row;
    row.push_back(i % 7 == 0 ? Value::Null() : Value::Int64(i));
    row.push_back(Value::Double(i * 0.5));
    row.push_back(Value::String("name-" + std::to_string(i)));
    row.push_back(Value::Bool(i % 2 == 0));
    ASSERT_TRUE(writer.AppendRow(row).ok());
  }
  ASSERT_TRUE(writer.Close().ok());

  CorcReader reader(path);
  ASSERT_TRUE(reader.Open().ok());
  EXPECT_EQ(reader.num_rows(), static_cast<uint64_t>(kRows));
  EXPECT_EQ(reader.schema(), TestSchema());
  ReadStats stats;
  auto batch = reader.ReadAll(&stats);
  ASSERT_TRUE(batch.ok()) << batch.status();
  ASSERT_EQ(batch->num_rows(), static_cast<size_t>(kRows));
  for (int i = 0; i < kRows; ++i) {
    if (i % 7 == 0) {
      EXPECT_TRUE(batch->column(0).IsNull(i));
    } else {
      EXPECT_EQ(batch->column(0).GetInt64(i), i);
    }
    EXPECT_DOUBLE_EQ(batch->column(1).GetDouble(i), i * 0.5);
    EXPECT_EQ(batch->column(2).GetString(i), "name-" + std::to_string(i));
    EXPECT_EQ(batch->column(3).GetBool(i), i % 2 == 0);
  }
  EXPECT_GT(stats.bytes_read, 0u);
  EXPECT_EQ(stats.rows_read, static_cast<uint64_t>(kRows));
}

TEST(CorcRoundTripTest, ColumnProjectionReadsOnlyRequestedColumns) {
  TempDir tmp;
  const std::string path = tmp.path("t.corc");
  CorcWriterOptions options;
  options.rows_per_group = 10;
  CorcWriter writer(path, TestSchema(), options);
  ASSERT_TRUE(writer.Open().ok());
  Rng rng(17);
  for (int i = 0; i < 30; ++i) {
    // Incompressible string payload so the column dominates the file size
    // under every format version (a constant payload would encode away).
    std::string payload(100, '\0');
    for (char& c : payload) c = static_cast<char>(rng.NextInt(0, 255));
    ASSERT_TRUE(writer
                    .AppendRow({Value::Int64(i), Value::Double(i),
                                Value::String(std::move(payload)),
                                Value::Bool(true)})
                    .ok());
  }
  ASSERT_TRUE(writer.Close().ok());

  CorcReader reader(path);
  ASSERT_TRUE(reader.Open().ok());
  ReadStats narrow;
  auto only_id = reader.ReadStripe(0, {0}, std::nullopt, &narrow);
  ASSERT_TRUE(only_id.ok());
  EXPECT_EQ(only_id->num_columns(), 1u);
  EXPECT_EQ(only_id->schema().field(0).name, "id");

  ReadStats wide;
  auto all = reader.ReadStripe(0, {0, 1, 2, 3}, std::nullopt, &wide);
  ASSERT_TRUE(all.ok());
  // Projection must read far fewer bytes than the full scan (the string
  // column dominates).
  EXPECT_LT(narrow.bytes_read * 3, wide.bytes_read);
}

TEST(CorcRoundTripTest, SargSkipsRowGroups) {
  TempDir tmp;
  const std::string path = tmp.path("t.corc");
  CorcWriterOptions options;
  options.rows_per_group = 10;
  CorcWriter writer(path, TestSchema(), options);
  ASSERT_TRUE(writer.Open().ok());
  // ids ascend 0..99, so groups have disjoint [min,max] ranges.
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(writer
                    .AppendRow({Value::Int64(i), Value::Double(i),
                                Value::String("s"), Value::Bool(false)})
                    .ok());
  }
  ASSERT_TRUE(writer.Close().ok());

  CorcReader reader(path);
  ASSERT_TRUE(reader.Open().ok());
  SearchArgument sarg;
  sarg.AddLeaf(SargLeaf{"id", SargOp::kGt, Value::Int64(74)});
  auto include = reader.ComputeRowGroupInclusion(0, sarg);
  ASSERT_TRUE(include.ok());
  ASSERT_EQ(include->size(), 10u);
  int included = 0;
  for (bool b : *include) included += b ? 1 : 0;
  EXPECT_EQ(included, 3);  // groups [70..79], [80..89], [90..99]

  ReadStats stats;
  auto batch = reader.ReadStripe(0, {0}, *include, &stats);
  ASSERT_TRUE(batch.ok());
  EXPECT_EQ(batch->num_rows(), 30u);
  EXPECT_EQ(stats.row_groups_skipped, 7u);
  EXPECT_EQ(batch->column(0).GetInt64(0), 70);
}

TEST(CorcRoundTripTest, EmptySargIncludesEverything) {
  TempDir tmp;
  const std::string path = tmp.path("t.corc");
  CorcWriterOptions options;
  options.rows_per_group = 4;
  CorcWriter writer(path, TestSchema(), options);
  ASSERT_TRUE(writer.Open().ok());
  for (int i = 0; i < 9; ++i) {
    ASSERT_TRUE(writer
                    .AppendRow({Value::Int64(i), Value::Double(0),
                                Value::String(""), Value::Bool(false)})
                    .ok());
  }
  ASSERT_TRUE(writer.Close().ok());
  CorcReader reader(path);
  ASSERT_TRUE(reader.Open().ok());
  auto include = reader.ComputeRowGroupInclusion(0, SearchArgument());
  ASSERT_TRUE(include.ok());
  EXPECT_EQ(include->size(), 3u);  // ceil(9/4)
  for (bool b : *include) EXPECT_TRUE(b);
}

TEST(CorcRoundTripTest, MultipleStripes) {
  TempDir tmp;
  const std::string path = tmp.path("t.corc");
  CorcWriterOptions options;
  options.rows_per_group = 5;
  options.rows_per_stripe = 20;
  CorcWriter writer(path, TestSchema(), options);
  ASSERT_TRUE(writer.Open().ok());
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(writer
                    .AppendRow({Value::Int64(i), Value::Double(i),
                                Value::String("r" + std::to_string(i)),
                                Value::Bool(i % 3 == 0)})
                    .ok());
  }
  ASSERT_TRUE(writer.Close().ok());
  CorcReader reader(path);
  ASSERT_TRUE(reader.Open().ok());
  EXPECT_EQ(reader.num_stripes(), 3u);  // 20 + 20 + 10
  auto all = reader.ReadAll(nullptr);
  ASSERT_TRUE(all.ok());
  ASSERT_EQ(all->num_rows(), 50u);
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(all->column(0).GetInt64(i), i);
    EXPECT_EQ(all->column(2).GetString(i), "r" + std::to_string(i));
  }
}

TEST(CorcReaderTest, RejectsGarbageFiles) {
  TempDir tmp;
  const std::string path = tmp.path("junk.corc");
  {
    std::ofstream f(path, std::ios::binary);
    f << "this is definitely not a CORC file, but long enough to check";
  }
  CorcReader reader(path);
  EXPECT_FALSE(reader.Open().ok());

  CorcReader missing(tmp.path("absent.corc"));
  EXPECT_FALSE(missing.Open().ok());
}

TEST(CorcPropertyTest, RandomizedRoundTrip) {
  // Property: arbitrary values written through the writer come back
  // identically, for several row-group sizes.
  for (uint32_t rows_per_group : {1u, 3u, 7u, 100u}) {
    TempDir tmp;
    const std::string path = tmp.path("t.corc");
    Rng rng(rows_per_group * 977);
    Schema schema;
    schema.AddField("i", TypeKind::kInt64);
    schema.AddField("s", TypeKind::kString);
    CorcWriterOptions options;
    options.rows_per_group = rows_per_group;
    CorcWriter writer(path, schema, options);
    ASSERT_TRUE(writer.Open().ok());
    std::vector<std::vector<Value>> expected;
    const int rows = 1 + static_cast<int>(rng.NextBounded(200));
    for (int i = 0; i < rows; ++i) {
      std::vector<Value> row;
      row.push_back(rng.NextBool(0.1) ? Value::Null()
                                      : Value::Int64(rng.NextInt(-1e9, 1e9)));
      std::string s;
      const size_t len = rng.NextBounded(20);
      for (size_t j = 0; j < len; ++j) {
        s.push_back(static_cast<char>(rng.NextInt(0, 255)));
      }
      row.push_back(rng.NextBool(0.1) ? Value::Null()
                                      : Value::String(std::move(s)));
      ASSERT_TRUE(writer.AppendRow(row).ok());
      expected.push_back(std::move(row));
    }
    ASSERT_TRUE(writer.Close().ok());

    CorcReader reader(path);
    ASSERT_TRUE(reader.Open().ok());
    auto batch = reader.ReadAll(nullptr);
    ASSERT_TRUE(batch.ok());
    ASSERT_EQ(batch->num_rows(), expected.size());
    for (size_t i = 0; i < expected.size(); ++i) {
      EXPECT_EQ(batch->GetRow(i)[0], expected[i][0]) << i;
      EXPECT_EQ(batch->GetRow(i)[1], expected[i][1]) << i;
    }
  }
}

TEST(FileSystemTest, SplitsAreSortedByName) {
  TempDir tmp;
  const std::string dir = tmp.path("table");
  ASSERT_TRUE(FileSystem::MakeDirs(dir).ok());
  // Create files out of order; listing must sort.
  for (int i : {3, 0, 2, 1}) {
    std::ofstream f(dir + "/" + FileSystem::PartFileName(i));
    f << "x";
  }
  std::ofstream ignored(dir + "/_metadata.json");
  ignored << "{}";
  auto splits = FileSystem::ListSplits(dir);
  ASSERT_TRUE(splits.ok());
  ASSERT_EQ(splits->size(), 4u);
  for (size_t i = 0; i < 4; ++i) {
    EXPECT_EQ((*splits)[i].index, i);
    EXPECT_NE((*splits)[i].path.find(FileSystem::PartFileName(i)),
              std::string::npos);
  }
}

TEST(FileSystemTest, DirectorySizeAndRemoveAll) {
  TempDir tmp;
  const std::string dir = tmp.path("d");
  ASSERT_TRUE(FileSystem::MakeDirs(dir + "/sub").ok());
  {
    std::ofstream f(dir + "/sub/file.bin", std::ios::binary);
    f << std::string(1000, 'a');
  }
  auto size = FileSystem::DirectorySize(dir);
  ASSERT_TRUE(size.ok());
  EXPECT_EQ(*size, 1000u);
  ASSERT_TRUE(FileSystem::RemoveAll(dir).ok());
  EXPECT_FALSE(FileSystem::Exists(dir));
  EXPECT_EQ(*FileSystem::DirectorySize(dir), 0u);
}

TEST(FileSystemTest, PartFileNamesSortNumerically) {
  EXPECT_EQ(FileSystem::PartFileName(0), "part-00000.corc");
  EXPECT_EQ(FileSystem::PartFileName(42), "part-00042.corc");
  EXPECT_LT(FileSystem::PartFileName(9), FileSystem::PartFileName(10));
}

TEST(FileSystemTest, PartFileNamesStaySortedPastPadWidth) {
  // %05zu saturates at 99999; the widened form must keep name order equal
  // to index order across the boundary or raw/cache row alignment breaks.
  EXPECT_EQ(FileSystem::PartFileName(99999), "part-99999.corc");
  EXPECT_LT(FileSystem::PartFileName(99999), FileSystem::PartFileName(100000));
  EXPECT_LT(FileSystem::PartFileName(100000),
            FileSystem::PartFileName(100001));
  EXPECT_LT(FileSystem::PartFileName(100001),
            FileSystem::PartFileName(12345678901ull));
  // Every name still ends in ".corc" so listings pick it up.
  EXPECT_NE(FileSystem::PartFileName(100000).find(".corc"),
            std::string::npos);
}

// ---- Durability: staged writes, checksums, malformed-tail hardening ----

std::string ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

void WriteFileBytes(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

/// Disarms the process-wide fault injector when the scope ends.
struct FaultGuard {
  ~FaultGuard() {
    EXPECT_TRUE(FaultInjector::Instance().Configure("off").ok());
  }
};

Schema IdSchema() {
  Schema schema;
  schema.AddField("id", TypeKind::kInt64);
  return schema;
}

TEST(CorcWriterTest, DestructorWithoutCloseAbortsStagedFile) {
  TempDir tmp;
  const std::string path = tmp.path("t.corc");
  {
    CorcWriter writer(path, IdSchema(), CorcWriterOptions{});
    ASSERT_TRUE(writer.Open().ok());
    ASSERT_TRUE(writer.AppendRow({Value::Int64(1)}).ok());
    // Writer leaves scope without Close(): nothing may be published.
  }
  EXPECT_FALSE(FileSystem::Exists(path));
  EXPECT_FALSE(FileSystem::Exists(path + ".tmp"));
}

TEST(CorcWriterTest, StagedFileIsInvisibleToSplitListings) {
  TempDir tmp;
  const std::string dir = tmp.path("table");
  ASSERT_TRUE(FileSystem::MakeDirs(dir).ok());
  CorcWriter writer(dir + "/" + FileSystem::PartFileName(0), IdSchema(),
                    CorcWriterOptions{});
  ASSERT_TRUE(writer.Open().ok());
  ASSERT_TRUE(writer.AppendRow({Value::Int64(1)}).ok());
  // Mid-write, only the ".tmp" staging file exists; readers see no splits.
  auto splits = FileSystem::ListSplits(dir);
  ASSERT_TRUE(splits.ok());
  EXPECT_TRUE(splits->empty());
  ASSERT_TRUE(writer.Close().ok());
  splits = FileSystem::ListSplits(dir);
  ASSERT_TRUE(splits.ok());
  EXPECT_EQ(splits->size(), 1u);
}

TEST(CorcWriterTest, FailedPublishLeavesNoFilesBehind) {
  // Fail each write-side op of a small file's lifecycle in turn; every
  // failure must surface through Close() and leave neither the final path
  // nor the staging file on disk.
  FaultGuard guard;
  for (int n = 1; n <= 8; ++n) {
    TempDir tmp;
    const std::string path = tmp.path("t.corc");
    ASSERT_TRUE(FaultInjector::Instance()
                    .Configure("fail:" + std::to_string(n))
                    .ok());
    Status status;
    {
      CorcWriter writer(path, IdSchema(), CorcWriterOptions{});
      status = writer.Open();
      if (status.ok()) status = writer.AppendRow({Value::Int64(7)});
      if (status.ok()) status = writer.Close();
      // Scope end: a writer whose Open failed cleans up via its destructor.
    }
    const bool tripped = FaultInjector::Instance().tripped();
    ASSERT_TRUE(FaultInjector::Instance().Configure("off").ok());
    if (!tripped) {
      // n exceeded the op count: the publish must have gone through whole.
      ASSERT_TRUE(status.ok()) << "n=" << n << ": " << status;
      EXPECT_TRUE(FileSystem::Exists(path)) << "n=" << n;
      CorcReader reader(path);
      EXPECT_TRUE(reader.Open().ok()) << "n=" << n;
      continue;
    }
    EXPECT_FALSE(status.ok()) << "n=" << n;
    // The staging file must never survive, and the final path may exist
    // only when the fault hit after the rename (e.g. the directory sync) —
    // in which case it is a complete, valid file, exactly as after a crash
    // between rename and directory flush.
    EXPECT_FALSE(FileSystem::Exists(path + ".tmp")) << "n=" << n;
    if (FileSystem::Exists(path)) {
      CorcReader reader(path);
      EXPECT_TRUE(reader.Open().ok()) << "n=" << n;
    }
  }
}

TEST(CorcWriterTest, TornWritePublishesNothingVisible) {
  FaultGuard guard;
  TempDir tmp;
  const std::string path = tmp.path("t.corc");
  ASSERT_TRUE(FaultInjector::Instance().Configure("torn:2").ok());
  CorcWriter writer(path, IdSchema(), CorcWriterOptions{});
  Status status = writer.Open();
  for (int i = 0; i < 10 && status.ok(); ++i) {
    status = writer.AppendRow({Value::Int64(i)});
  }
  if (status.ok()) status = writer.Close();
  ASSERT_TRUE(FaultInjector::Instance().Configure("off").ok());
  EXPECT_FALSE(status.ok());
  EXPECT_FALSE(FileSystem::Exists(path));
  EXPECT_FALSE(FileSystem::Exists(path + ".tmp"));
}

TEST(CorcReaderTest, EmptyAndShortFilesAreCorruption) {
  TempDir tmp;
  WriteFileBytes(tmp.path("empty.corc"), "");
  WriteFileBytes(tmp.path("short.corc"), "CORC2");
  WriteFileBytes(tmp.path("almost.corc"), "CORC2xxxCORC2");  // 13 < minimum
  for (const char* name : {"empty.corc", "short.corc", "almost.corc"}) {
    CorcReader reader(tmp.path(name));
    Status status = reader.Open();
    EXPECT_TRUE(status.IsCorruption()) << name << ": " << status;
  }
}

TEST(CorcReaderTest, HugeFooterLenIsCorruptionNotOverflow) {
  // A footer_len near UINT32_MAX must fail the bounds check cleanly; with
  // 32-bit arithmetic `len + tail` would wrap and pass.
  TempDir tmp;
  const std::string path = tmp.path("t.corc");
  CorcWriter writer(path, IdSchema(), CorcWriterOptions{});
  ASSERT_TRUE(writer.Open().ok());
  ASSERT_TRUE(writer.AppendRow({Value::Int64(1)}).ok());
  ASSERT_TRUE(writer.Close().ok());
  std::string bytes = ReadFileBytes(path);
  ASSERT_GT(bytes.size(), 13u);
  for (uint32_t len : {UINT32_MAX, UINT32_MAX - 12, UINT32_MAX - 13}) {
    std::string damaged = bytes;
    // v2 tail: [footer_crc u32][footer_len u32][magic 5].
    std::memcpy(damaged.data() + damaged.size() - 9, &len, 4);
    WriteFileBytes(path, damaged);
    CorcReader reader(path);
    Status status = reader.Open();
    EXPECT_TRUE(status.IsCorruption()) << "len=" << len << ": " << status;
  }
}

TEST(CorcReaderTest, FooterAndChunkChecksumsCatchBitFlips) {
  TempDir tmp;
  const std::string path = tmp.path("t.corc");
  CorcWriter writer(path, IdSchema(), CorcWriterOptions{});
  ASSERT_TRUE(writer.Open().ok());
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(writer.AppendRow({Value::Int64(i)}).ok());
  }
  ASSERT_TRUE(writer.Close().ok());
  const std::string pristine = ReadFileBytes(path);
  uint32_t footer_len = 0;
  std::memcpy(&footer_len, pristine.data() + pristine.size() - 9, 4);
  const size_t footer_start = pristine.size() - 13 - footer_len;

  {
    // Flip a bit inside the footer JSON: Open must fail its checksum.
    std::string damaged = pristine;
    damaged[footer_start + footer_len / 2] ^= 0x01;
    WriteFileBytes(path, damaged);
    CorcReader reader(path);
    Status status = reader.Open();
    EXPECT_TRUE(status.IsCorruption()) << status;
  }
  {
    // Flip a bit inside the data section: Open succeeds (the footer is
    // intact) but decoding the chunk must fail its checksum.
    std::string damaged = pristine;
    damaged[kCorcMagicLen + 1] ^= 0x01;
    WriteFileBytes(path, damaged);
    CorcReader reader(path);
    ASSERT_TRUE(reader.Open().ok());
    auto batch = reader.ReadAll(nullptr);
    ASSERT_FALSE(batch.ok());
    EXPECT_TRUE(batch.status().IsCorruption()) << batch.status();
  }
}

TEST(CorcReaderTest, ReadsVersion1FilesWithoutChecksums) {
  // Hand-build a v1 file (leading/trailing "CORC1", no footer CRC, no
  // per-group "crc" keys): readers must still load it — existing caches
  // written before the version bump stay usable.
  TempDir tmp;
  const std::string path = tmp.path("v1.corc");
  std::string bytes = "CORC1";
  // One row group of two non-null int64 rows: null bytes then values.
  bytes.append(2, '\0');
  const int64_t values[2] = {41, 42};
  bytes.append(reinterpret_cast<const char*>(values), 16);
  const std::string footer =
      "{\"fields\":[{\"name\":\"id\",\"type\":1}],\"rows_per_group\":100,"
      "\"num_rows\":2,\"stripes\":[{\"num_rows\":2,\"columns\":[{"
      "\"row_groups\":[{\"offset\":5,\"length\":18,\"min\":41,\"max\":42,"
      "\"nulls\":0,\"values\":2}]}]}]}";
  bytes += footer;
  const uint32_t footer_len = static_cast<uint32_t>(footer.size());
  bytes.append(reinterpret_cast<const char*>(&footer_len), 4);
  bytes += "CORC1";
  WriteFileBytes(path, bytes);

  CorcReader reader(path);
  ASSERT_TRUE(reader.Open().ok());
  EXPECT_EQ(reader.footer().version, kCorcVersionV1);
  EXPECT_EQ(reader.num_rows(), 2u);
  auto batch = reader.ReadAll(nullptr);
  ASSERT_TRUE(batch.ok()) << batch.status();
  ASSERT_EQ(batch->num_rows(), 2u);
  EXPECT_EQ(batch->column(0).GetInt64(0), 41);
  EXPECT_EQ(batch->column(0).GetInt64(1), 42);
}

TEST(CorcReaderTest, MixedMagicIsCorruption) {
  // A v2 head with a v1 tail (or vice versa) means the file was spliced or
  // torn across versions; both directions must be rejected.
  TempDir tmp;
  const std::string path = tmp.path("t.corc");
  CorcWriter writer(path, IdSchema(), CorcWriterOptions{});
  ASSERT_TRUE(writer.Open().ok());
  ASSERT_TRUE(writer.AppendRow({Value::Int64(1)}).ok());
  ASSERT_TRUE(writer.Close().ok());
  std::string bytes = ReadFileBytes(path);
  std::memcpy(bytes.data(), "CORC1", 5);  // head says v1, tail says v2
  WriteFileBytes(path, bytes);
  CorcReader reader(path);
  Status status = reader.Open();
  EXPECT_TRUE(status.IsCorruption()) << status;
}

TEST(FaultInjectorTest, SpecValidationAndOneShotShortRead) {
  FaultGuard guard;
  for (const char* bad : {"", "fail", "fail:", "fail:0", "fail:2x", "nope:1"}) {
    EXPECT_FALSE(FaultInjector::ValidateSpec(bad).ok()) << bad;
    EXPECT_FALSE(FaultInjector::Instance().Configure(bad).ok()) << bad;
  }
  EXPECT_TRUE(FaultInjector::ValidateSpec("off").ok());
  EXPECT_TRUE(FaultInjector::ValidateSpec("torn:12").ok());
  // A rejected Configure leaves the injector disarmed.
  EXPECT_EQ(FaultInjector::Instance().spec(), "off");
  EXPECT_FALSE(FaultInjector::Instance().enabled());

  ASSERT_TRUE(FaultInjector::Instance().Configure("short:2").ok());
  EXPECT_EQ(FaultInjector::Instance().OnRead(100), 100u);  // op 1
  EXPECT_EQ(FaultInjector::Instance().OnRead(100), 50u);   // op 2 trips
  EXPECT_EQ(FaultInjector::Instance().OnRead(100), 100u);  // one-shot
  EXPECT_TRUE(FaultInjector::Instance().tripped());
}

// ---- CORC v3 chunk encodings ----

/// Plain-layout chunk for a fixed-width column: null byte per row, then the
/// value slots (nulls hold the zero default, matching ColumnVector).
template <typename T>
std::string PlainFixedChunk(const std::vector<std::pair<bool, T>>& rows) {
  std::string out;
  for (const auto& [is_null, v] : rows) out.push_back(is_null ? 1 : 0);
  for (const auto& [is_null, v] : rows) {
    const T slot = is_null ? T{} : v;
    out.append(reinterpret_cast<const char*>(&slot), sizeof(T));
  }
  return out;
}

/// Plain-layout chunk for a string column (null row => zero length).
std::string PlainStringChunk(
    const std::vector<std::pair<bool, std::string>>& rows) {
  std::string out;
  for (const auto& [is_null, v] : rows) out.push_back(is_null ? 1 : 0);
  for (const auto& [is_null, v] : rows) {
    const uint32_t len = is_null ? 0 : static_cast<uint32_t>(v.size());
    out.append(reinterpret_cast<const char*>(&len), 4);
    if (!is_null) out.append(v);
  }
  return out;
}

TEST(CorcEncodingTest, RleRoundTripFixedWidthTypes) {
  std::vector<std::pair<bool, int64_t>> ints;
  for (int i = 0; i < 200; ++i) ints.push_back({false, i / 50});
  ints.push_back({true, 0});
  const std::string plain = PlainFixedChunk(ints);
  std::string encoded;
  ASSERT_TRUE(RleEncodeChunk(TypeKind::kInt64, ints.size(), plain, &encoded));
  EXPECT_LT(encoded.size(), plain.size());
  std::string decoded;
  ASSERT_TRUE(DecodeChunk(ChunkEncoding::kRle, TypeKind::kInt64, ints.size(),
                          plain.size(), encoded, &decoded)
                  .ok());
  EXPECT_EQ(decoded, plain);

  std::vector<std::pair<bool, double>> doubles(64, {false, 2.5});
  const std::string dplain = PlainFixedChunk(doubles);
  std::string denc;
  ASSERT_TRUE(
      RleEncodeChunk(TypeKind::kDouble, doubles.size(), dplain, &denc));
  std::string ddec;
  ASSERT_TRUE(DecodeChunk(ChunkEncoding::kRle, TypeKind::kDouble,
                          doubles.size(), dplain.size(), denc, &ddec)
                  .ok());
  EXPECT_EQ(ddec, dplain);

  std::vector<std::pair<bool, uint8_t>> bools(33, {false, 1});
  const std::string bplain = PlainFixedChunk(bools);
  std::string benc;
  ASSERT_TRUE(RleEncodeChunk(TypeKind::kBool, bools.size(), bplain, &benc));
  std::string bdec;
  ASSERT_TRUE(DecodeChunk(ChunkEncoding::kRle, TypeKind::kBool, bools.size(),
                          bplain.size(), benc, &bdec)
                  .ok());
  EXPECT_EQ(bdec, bplain);
}

TEST(CorcEncodingTest, RleDoesNotApplyToStringsOrHighEntropy) {
  std::string out;
  EXPECT_FALSE(RleEncodeChunk(
      TypeKind::kString, 2, PlainStringChunk({{false, "a"}, {false, "b"}}),
      &out));
  // Strictly alternating values: every run has length 1, so RLE cannot win.
  std::vector<std::pair<bool, int64_t>> rows;
  for (int i = 0; i < 100; ++i) rows.push_back({false, i % 2 ? -i : i});
  EXPECT_FALSE(RleEncodeChunk(TypeKind::kInt64, rows.size(),
                              PlainFixedChunk(rows), &out));
}

TEST(CorcEncodingTest, DictRoundTripLowCardinalityStrings) {
  std::vector<std::pair<bool, std::string>> rows;
  const char* tags[] = {"checkout", "search", "landing"};
  for (int i = 0; i < 300; ++i) {
    if (i % 31 == 0) {
      rows.push_back({true, ""});
    } else {
      rows.push_back({false, tags[i % 3]});
    }
  }
  const std::string plain = PlainStringChunk(rows);
  std::string encoded;
  ASSERT_TRUE(DictEncodeChunk(TypeKind::kString, rows.size(), plain,
                              &encoded));
  EXPECT_LT(encoded.size(), plain.size());
  std::string decoded;
  ASSERT_TRUE(DecodeChunk(ChunkEncoding::kDict, TypeKind::kString,
                          rows.size(), plain.size(), encoded, &decoded)
                  .ok());
  EXPECT_EQ(decoded, plain);
}

TEST(CorcEncodingTest, DictRejectedWhenEveryValueIsDistinct) {
  std::vector<std::pair<bool, std::string>> rows;
  for (int i = 0; i < 50; ++i) rows.push_back({false, std::to_string(i)});
  std::string out;
  EXPECT_FALSE(DictEncodeChunk(TypeKind::kString, rows.size(),
                               PlainStringChunk(rows), &out));
  EXPECT_FALSE(DictEncodeChunk(TypeKind::kInt64, 1,
                               PlainFixedChunk<int64_t>({{false, 1}}), &out));
}

TEST(CorcEncodingTest, BlockRoundTripArbitraryBytes) {
  Rng rng(4242);
  std::vector<std::string> inputs = {"", "a", std::string(100000, 'z')};
  {
    // Repetitive but multi-byte patterns (overlapping matches).
    std::string s;
    for (int i = 0; i < 5000; ++i) s += "abcabcab";
    inputs.push_back(std::move(s));
  }
  {
    // Incompressible random bytes: round-trip must still hold even though
    // the "compressed" form is larger.
    std::string s;
    for (int i = 0; i < 3000; ++i) {
      s.push_back(static_cast<char>(rng.NextInt(0, 255)));
    }
    inputs.push_back(std::move(s));
  }
  for (const std::string& input : inputs) {
    std::string compressed;
    BlockCompress(input, &compressed);
    std::string output;
    ASSERT_TRUE(BlockDecompress(compressed, input.size(), &output).ok())
        << "input size " << input.size();
    EXPECT_EQ(output, input);
  }
  // The repetitive inputs must actually shrink.
  std::string compressed;
  BlockCompress(inputs[2], &compressed);
  EXPECT_LT(compressed.size(), inputs[2].size());
}

TEST(CorcEncodingTest, AdaptivePicksSmallestWithPlainFloor) {
  // A chunk too small for any codec to amortize its overhead (two random
  // values; the 2-byte null prefix is below the block codec's minimum
  // match): every candidate loses, plain is kept verbatim.
  Rng rng(99);
  auto random_int64 = [&rng]() {
    return rng.NextInt(INT32_MIN, INT32_MAX) * (int64_t{1} << 31) +
           rng.NextInt(INT32_MIN, INT32_MAX);
  };
  std::vector<std::pair<bool, int64_t>> tiny = {{false, random_int64()},
                                                {false, random_int64()}};
  const std::string tiny_plain = PlainFixedChunk(tiny);
  std::string out;
  EXPECT_EQ(EncodeChunkAdaptive(TypeKind::kInt64, tiny.size(), tiny_plain,
                                &out),
            ChunkEncoding::kPlain);
  EXPECT_EQ(out, tiny_plain);

  // Random values at scale: the value bytes are incompressible, but the
  // all-zero null prefix is, so SOME encoding wins — and whatever is
  // picked must never exceed the plain floor and must round-trip exactly.
  std::vector<std::pair<bool, int64_t>> random_rows;
  for (int i = 0; i < 100; ++i) {
    random_rows.push_back({false, random_int64()});
  }
  const std::string random_plain = PlainFixedChunk(random_rows);
  const ChunkEncoding random_enc = EncodeChunkAdaptive(
      TypeKind::kInt64, random_rows.size(), random_plain, &out);
  EXPECT_LE(out.size(), random_plain.size());
  std::string random_decoded;
  ASSERT_TRUE(DecodeChunk(random_enc, TypeKind::kInt64, random_rows.size(),
                          random_plain.size(), out, &random_decoded)
                  .ok());
  EXPECT_EQ(random_decoded, random_plain);

  // A constant column: RLE wins and decodes back exactly.
  std::vector<std::pair<bool, int64_t>> constant(500, {false, 42});
  const std::string const_plain = PlainFixedChunk(constant);
  const ChunkEncoding enc = EncodeChunkAdaptive(
      TypeKind::kInt64, constant.size(), const_plain, &out);
  EXPECT_EQ(enc, ChunkEncoding::kRle);
  EXPECT_LT(out.size(), const_plain.size());
  std::string decoded;
  ASSERT_TRUE(DecodeChunk(enc, TypeKind::kInt64, constant.size(),
                          const_plain.size(), out, &decoded)
                  .ok());
  EXPECT_EQ(decoded, const_plain);

  // Low-cardinality strings: dictionary beats plain.
  std::vector<std::pair<bool, std::string>> tags;
  for (int i = 0; i < 400; ++i) {
    tags.push_back({false, i % 2 ? "mobile_web_client" : "desktop_client"});
  }
  const std::string tag_plain = PlainStringChunk(tags);
  const ChunkEncoding tag_enc =
      EncodeChunkAdaptive(TypeKind::kString, tags.size(), tag_plain, &out);
  EXPECT_NE(tag_enc, ChunkEncoding::kPlain);
  EXPECT_LT(out.size(), tag_plain.size());
  ASSERT_TRUE(DecodeChunk(tag_enc, TypeKind::kString, tags.size(),
                          tag_plain.size(), out, &decoded)
                  .ok());
  EXPECT_EQ(decoded, tag_plain);
}

TEST(CorcEncodingTest, AdaptiveRandomizedRoundTripEveryType) {
  // Property: whatever the adaptive encoder picks decodes back to the
  // exact plain bytes, across types, row counts, and data shapes.
  Rng rng(20260808);
  for (int iter = 0; iter < 60; ++iter) {
    const size_t rows = 1 + rng.NextBounded(300);
    const int shape = static_cast<int>(rng.NextBounded(3));  // runs/low-card/random
    const TypeKind type = static_cast<TypeKind>(rng.NextBounded(4));
    std::string plain;
    if (type == TypeKind::kString) {
      std::vector<std::pair<bool, std::string>> vals;
      for (size_t i = 0; i < rows; ++i) {
        if (rng.NextBool(0.1)) {
          vals.push_back({true, ""});
        } else if (shape == 0) {
          vals.push_back({false, "run"});
        } else if (shape == 1) {
          vals.push_back({false, std::to_string(rng.NextBounded(4))});
        } else {
          std::string s;
          for (size_t j = rng.NextBounded(12); j > 0; --j) {
            s.push_back(static_cast<char>(rng.NextInt(0, 255)));
          }
          vals.push_back({false, std::move(s)});
        }
      }
      plain = PlainStringChunk(vals);
    } else if (type == TypeKind::kBool) {
      std::vector<std::pair<bool, uint8_t>> vals;
      for (size_t i = 0; i < rows; ++i) {
        vals.push_back({rng.NextBool(0.1),
                        static_cast<uint8_t>(rng.NextBool(0.5) ? 1 : 0)});
      }
      plain = PlainFixedChunk(vals);
    } else {
      std::vector<std::pair<bool, int64_t>> vals;
      int64_t run_value = rng.NextInt(-5, 5);
      for (size_t i = 0; i < rows; ++i) {
        if (shape == 0 && rng.NextBool(0.9)) {
          // keep the run
        } else if (shape == 1) {
          run_value = rng.NextInt(0, 3);
        } else {
          run_value = rng.NextInt(-1e9, 1e9);
        }
        vals.push_back({rng.NextBool(0.1), run_value});
      }
      plain = PlainFixedChunk(vals);  // double shares the 8-byte layout
    }
    std::string encoded;
    const ChunkEncoding enc =
        EncodeChunkAdaptive(type, rows, plain, &encoded);
    EXPECT_LE(encoded.size(), plain.size());
    std::string decoded;
    ASSERT_TRUE(
        DecodeChunk(enc, type, rows, plain.size(), encoded, &decoded).ok())
        << "iter " << iter << " type " << static_cast<int>(type) << " enc "
        << static_cast<int>(enc);
    EXPECT_EQ(decoded, plain) << "iter " << iter;
  }
}

TEST(CorcEncodingTest, DecodersRejectMalformedStreamsWithoutCrashing) {
  // Valid encoded streams, then truncated and bit-flipped variants: every
  // decode must either succeed with exactly raw_length bytes or return
  // typed Corruption — never crash, hang, or over-allocate.
  std::vector<std::pair<bool, int64_t>> ints(100, {false, 9});
  const std::string int_plain = PlainFixedChunk(ints);
  std::vector<std::pair<bool, std::string>> strs(60, {false, "dup"});
  const std::string str_plain = PlainStringChunk(strs);

  struct Case {
    ChunkEncoding enc;
    TypeKind type;
    size_t rows;
    size_t raw_length;
    std::string encoded;
  };
  std::vector<Case> cases;
  {
    std::string e;
    ASSERT_TRUE(RleEncodeChunk(TypeKind::kInt64, ints.size(), int_plain, &e));
    cases.push_back({ChunkEncoding::kRle, TypeKind::kInt64, ints.size(),
                     int_plain.size(), std::move(e)});
  }
  {
    std::string e;
    ASSERT_TRUE(DictEncodeChunk(TypeKind::kString, strs.size(), str_plain,
                                &e));
    cases.push_back({ChunkEncoding::kDict, TypeKind::kString, strs.size(),
                     str_plain.size(), std::move(e)});
  }
  {
    std::string e;
    BlockCompress(str_plain, &e);
    cases.push_back({ChunkEncoding::kBlock, TypeKind::kString, strs.size(),
                     str_plain.size(), std::move(e)});
  }

  Rng rng(7);
  for (const Case& c : cases) {
    for (size_t cut = 0; cut < c.encoded.size(); ++cut) {
      std::string truncated = c.encoded.substr(0, cut);
      std::string out;
      const Status st = DecodeChunk(c.enc, c.type, c.rows, c.raw_length,
                                    truncated, &out);
      if (st.ok()) {
        EXPECT_EQ(out.size(), c.raw_length);
      } else {
        EXPECT_TRUE(st.IsCorruption()) << st;
      }
    }
    for (int flip = 0; flip < 200; ++flip) {
      std::string mutated = c.encoded;
      mutated[rng.NextBounded(mutated.size())] ^=
          static_cast<char>(1 << rng.NextBounded(8));
      std::string out;
      const Status st =
          DecodeChunk(c.enc, c.type, c.rows, c.raw_length, mutated, &out);
      if (st.ok()) {
        EXPECT_EQ(out.size(), c.raw_length);
      } else {
        EXPECT_TRUE(st.IsCorruption()) << st;
      }
    }
  }

  // Targeted: a dictionary index >= dict_count must be caught (the MaxU32
  // validation pass), not read out of bounds.
  {
    std::string e;
    ASSERT_TRUE(DictEncodeChunk(TypeKind::kString, strs.size(), str_plain,
                                &e));
    const uint32_t huge = 0x7FFFFFFF;
    std::memcpy(e.data() + e.size() - 4, &huge, 4);  // last row's index
    std::string out;
    const Status st = DecodeChunk(ChunkEncoding::kDict, TypeKind::kString,
                                  strs.size(), str_plain.size(), e, &out);
    EXPECT_TRUE(st.IsCorruption()) << st;
  }
  // Targeted: dict only applies to string columns.
  {
    std::string out;
    EXPECT_TRUE(DecodeChunk(ChunkEncoding::kDict, TypeKind::kInt64,
                            ints.size(), int_plain.size(), "", &out)
                    .IsCorruption());
  }
  // Targeted: a plain chunk whose raw_length disagrees with its size.
  {
    std::string out;
    EXPECT_TRUE(DecodeChunk(ChunkEncoding::kPlain, TypeKind::kInt64,
                            ints.size(), int_plain.size() + 1, int_plain,
                            &out)
                    .IsCorruption());
  }
}

TEST(CorcEncodingTest, OversizedStringValueIsRejectedUpFront) {
  // The per-row length field is u32; a value one byte past it must be an
  // InvalidArgument from validation (previously the size was silently
  // truncated by a static_cast and the chunk checksummed cleanly). The
  // helper is tested directly — allocating a real 4 GiB string would sink
  // CI — and is the exact check the writer's string path calls per value.
  EXPECT_TRUE(ValidateCorcStringSize(0).ok());
  EXPECT_TRUE(ValidateCorcStringSize(kMaxCorcStringBytes).ok());
  const Status st = ValidateCorcStringSize(kMaxCorcStringBytes + 1);
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument) << st;
}

TEST(CorcEncodingTest, CrossVersionWriteReadMatrix) {
  // The same rows written as v2 and v3 read back identically; the v3 file
  // is smaller on this repetitive data; the v2 file carries no encoding
  // keys (byte-compatibility with pre-encoding readers).
  TempDir tmp;
  std::vector<std::vector<Value>> rows;
  for (int i = 0; i < 200; ++i) {
    rows.push_back({Value::Int64(i / 40), Value::Double(3.5),
                    Value::String(i % 2 ? "on" : "off"),
                    i % 17 == 0 ? Value::Null() : Value::Bool(true)});
  }
  std::map<uint32_t, std::string> files;
  for (uint32_t version : {kCorcVersion, kCorcVersionV3}) {
    const std::string path =
        tmp.path("v" + std::to_string(version) + ".corc");
    CorcWriterOptions options;
    options.rows_per_group = 16;
    options.format_version = version;
    CorcWriter writer(path, TestSchema(), options);
    ASSERT_TRUE(writer.Open().ok());
    for (const auto& row : rows) ASSERT_TRUE(writer.AppendRow(row).ok());
    ASSERT_TRUE(writer.Close().ok());
    files[version] = path;

    CorcReader reader(path);
    ASSERT_TRUE(reader.Open().ok());
    EXPECT_EQ(reader.footer().version, version);
    auto batch = reader.ReadAll(nullptr);
    ASSERT_TRUE(batch.ok()) << batch.status();
    ASSERT_EQ(batch->num_rows(), rows.size());
    for (size_t i = 0; i < rows.size(); ++i) {
      for (size_t c = 0; c < 4; ++c) {
        EXPECT_EQ(batch->GetRow(i)[c], rows[i][c]) << "v" << version;
      }
    }
  }
  const std::string v2 = ReadFileBytes(files[kCorcVersion]);
  const std::string v3 = ReadFileBytes(files[kCorcVersionV3]);
  EXPECT_LT(v3.size(), v2.size());
  EXPECT_EQ(v2.substr(0, 5), "CORC2");
  EXPECT_EQ(v2.substr(v2.size() - 5), "CORC2");
  EXPECT_EQ(v2.find("\"enc\""), std::string::npos);
  EXPECT_EQ(v2.find("\"raw_len\""), std::string::npos);
  EXPECT_EQ(v3.substr(0, 5), "CORC3");
  EXPECT_EQ(v3.substr(v3.size() - 5), "CORC3");
}

TEST(CorcEncodingTest, WriterStatsAccountForEveryChunk) {
  TempDir tmp;
  const std::string path = tmp.path("t.corc");
  CorcWriterOptions options;
  options.rows_per_group = 32;
  CorcWriter writer(path, TestSchema(), options);
  ASSERT_TRUE(writer.Open().ok());
  for (int i = 0; i < 128; ++i) {
    ASSERT_TRUE(writer
                    .AppendRow({Value::Int64(7), Value::Double(7),
                                Value::String("seven"), Value::Bool(true)})
                    .ok());
  }
  ASSERT_TRUE(writer.Close().ok());
  const CorcWriteStats& stats = writer.write_stats();
  uint64_t chunks = 0;
  for (int e = 0; e < kNumChunkEncodings; ++e) chunks += stats.chunks[e];
  EXPECT_EQ(chunks, 4u * 4u);  // 4 columns x ceil(128/32) groups
  EXPECT_GT(stats.raw_bytes, 0u);
  EXPECT_LT(stats.encoded_bytes, stats.raw_bytes);  // constant data encodes
  EXPECT_GT(stats.chunks[static_cast<int>(ChunkEncoding::kRle)] +
                stats.chunks[static_cast<int>(ChunkEncoding::kDict)] +
                stats.chunks[static_cast<int>(ChunkEncoding::kBlock)],
            0u);
}

TEST(CorcEncodingTest, WriterRejectsUnknownFormatVersion) {
  TempDir tmp;
  for (uint32_t version : {0u, 1u, 4u}) {
    CorcWriterOptions options;
    options.format_version = version;
    CorcWriter writer(tmp.path("t.corc"), IdSchema(), options);
    const Status st = writer.Open();
    EXPECT_EQ(st.code(), StatusCode::kInvalidArgument) << version << ": " << st;
  }
}

TEST(CorcEncodingTest, V3ChecksumsCoverEncodedBytes) {
  // Flip one bit in a v3 encoded chunk: the CRC (computed over the encoded
  // bytes) must catch it before any decoder touches the stream.
  TempDir tmp;
  const std::string path = tmp.path("t.corc");
  CorcWriterOptions options;
  options.rows_per_group = 64;
  CorcWriter writer(path, IdSchema(), options);
  ASSERT_TRUE(writer.Open().ok());
  for (int i = 0; i < 64; ++i) {
    ASSERT_TRUE(writer.AppendRow({Value::Int64(5)}).ok());
  }
  ASSERT_TRUE(writer.Close().ok());
  std::string bytes = ReadFileBytes(path);
  bytes[kCorcMagicLen + 2] ^= 0x10;
  WriteFileBytes(path, bytes);
  CorcReader reader(path);
  ASSERT_TRUE(reader.Open().ok());
  auto batch = reader.ReadAll(nullptr);
  ASSERT_FALSE(batch.ok());
  EXPECT_TRUE(batch.status().IsCorruption()) << batch.status();
}

TEST(CorcEncodingTest, HostileV3FooterEncodingFieldsAreRejected) {
  TempDir tmp;
  const std::string path = tmp.path("t.corc");
  CorcWriterOptions options;
  options.rows_per_group = 8;
  CorcWriter writer(path, IdSchema(), options);
  ASSERT_TRUE(writer.Open().ok());
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(writer.AppendRow({Value::Int64(i * 1000 + 17)}).ok());
  }
  ASSERT_TRUE(writer.Close().ok());
  const std::string pristine = ReadFileBytes(path);
  uint32_t footer_len = 0;
  std::memcpy(&footer_len, pristine.data() + pristine.size() - 9, 4);
  const size_t footer_start = pristine.size() - 13 - footer_len;
  const std::string footer = pristine.substr(footer_start, footer_len);

  // Rewrites the footer JSON (fixing up the CRC and length) so directory
  // attacks survive the footer checksum and exercise the field validation.
  const auto rewrite = [&](const std::string& from, const std::string& to) {
    std::string patched = footer;
    const size_t at = patched.find(from);
    ASSERT_NE(at, std::string::npos) << from;
    patched.replace(at, from.size(), to);
    std::string bytes = pristine.substr(0, footer_start) + patched;
    const uint32_t crc = simd::Crc32c(
        reinterpret_cast<const uint8_t*>(patched.data()), patched.size());
    const uint32_t len = static_cast<uint32_t>(patched.size());
    bytes.append(reinterpret_cast<const char*>(&crc), 4);
    bytes.append(reinterpret_cast<const char*>(&len), 4);
    bytes.append(kCorcMagicV3, kCorcMagicLen);
    WriteFileBytes(path, bytes);
  };

  // The winning encoding depends on the data, so locate the keys with
  // their actual rendered digits rather than assuming an id.
  const auto field_text = [&](const std::string& key) {
    const size_t at = footer.find(key);
    EXPECT_NE(at, std::string::npos) << key;
    size_t end = at + key.size();
    while (end < footer.size() &&
           std::isdigit(static_cast<unsigned char>(footer[end]))) {
      ++end;
    }
    return footer.substr(at, end - at);
  };
  const std::string enc_text = field_text("\"enc\":");
  const std::string raw_len_text = field_text("\"raw_len\":");

  {  // Unknown encoding id.
    SCOPED_TRACE("enc id");
    rewrite(enc_text, "\"enc\":9");
    CorcReader reader(path);
    const Status st = reader.Open();
    EXPECT_TRUE(st.IsCorruption()) << st;
  }
  {  // Absurd decoded length (beyond the 1 GiB decode cap).
    SCOPED_TRACE("raw_len");
    rewrite(raw_len_text, "\"raw_len\":999999999999");
    CorcReader reader(path);
    const Status st = reader.Open();
    EXPECT_TRUE(st.IsCorruption()) << st;
  }
  {  // Missing encoding keys in a v3 footer.
    SCOPED_TRACE("missing keys");
    rewrite(enc_text + ",", "");
    CorcReader reader(path);
    const Status st = reader.Open();
    EXPECT_TRUE(st.IsCorruption()) << st;
  }
}

// ---- Footer-directory consistency validation (CorcReader::Open) ----

/// Hand-builds a v1 file (no CRCs, so footers can be forged freely) with a
/// 64-byte zero data region for chunk entries to point into.
std::string ForgeV1File(const std::string& footer) {
  std::string bytes = "CORC1";
  bytes.append(64, '\0');
  bytes += footer;
  const uint32_t footer_len = static_cast<uint32_t>(footer.size());
  bytes.append(reinterpret_cast<const char*>(&footer_len), 4);
  bytes += "CORC1";
  return bytes;
}

constexpr char kGroup[] =
    "{\"offset\":5,\"length\":18,\"min\":null,\"max\":null,\"nulls\":2,"
    "\"values\":2}";

TEST(CorcReaderTest, FooterWithExtraColumnIsCorruption) {
  // One schema field but two column entries: before validation the extra
  // directory entry was silently carried along and ReadStripe could index
  // columns the schema does not have.
  TempDir tmp;
  const std::string path = tmp.path("t.corc");
  const std::string footer = std::string() +
      "{\"fields\":[{\"name\":\"id\",\"type\":1}],\"rows_per_group\":100,"
      "\"num_rows\":2,\"stripes\":[{\"num_rows\":2,\"columns\":["
      "{\"row_groups\":[" + kGroup + "]},{\"row_groups\":[" + kGroup +
      "]}]}]}";
  WriteFileBytes(path, ForgeV1File(footer));
  CorcReader reader(path);
  const Status st = reader.Open();
  ASSERT_TRUE(st.IsCorruption()) << st;
  EXPECT_NE(st.message().find("column count"), std::string::npos) << st;
}

TEST(CorcReaderTest, FooterWithMissingColumnIsCorruption) {
  // Two schema fields but a single column entry: a projection of the second
  // field would previously index past the directory.
  TempDir tmp;
  const std::string path = tmp.path("t.corc");
  const std::string footer = std::string() +
      "{\"fields\":[{\"name\":\"a\",\"type\":1},{\"name\":\"b\",\"type\":1}],"
      "\"rows_per_group\":100,\"num_rows\":2,\"stripes\":[{\"num_rows\":2,"
      "\"columns\":[{\"row_groups\":[" + kGroup + "]}]}]}";
  WriteFileBytes(path, ForgeV1File(footer));
  CorcReader reader(path);
  const Status st = reader.Open();
  ASSERT_TRUE(st.IsCorruption()) << st;
  EXPECT_NE(st.message().find("column count"), std::string::npos) << st;
}

TEST(CorcReaderTest, RaggedRowGroupCountsAreCorruption) {
  // Both columns must list one group per rows_per_group slice; a ragged
  // directory previously crashed ReadStripe on the shorter column.
  TempDir tmp;
  const std::string path = tmp.path("t.corc");
  const std::string footer = std::string() +
      "{\"fields\":[{\"name\":\"a\",\"type\":1},{\"name\":\"b\",\"type\":1}],"
      "\"rows_per_group\":2,\"num_rows\":4,\"stripes\":[{\"num_rows\":4,"
      "\"columns\":[{\"row_groups\":[" + kGroup + "," + kGroup +
      "]},{\"row_groups\":[" + kGroup + "]}]}]}";
  WriteFileBytes(path, ForgeV1File(footer));
  CorcReader reader(path);
  const Status st = reader.Open();
  ASSERT_TRUE(st.IsCorruption()) << st;
  EXPECT_NE(st.message().find("row group count"), std::string::npos) << st;
}

TEST(CorcReaderTest, GroupCountDisagreeingWithStripeRowsIsCorruption) {
  // 25 rows at 10 rows/group needs 3 groups; a directory listing 2 would
  // previously drop the tail rows silently. A zero-row stripe listing a
  // group is equally inconsistent.
  TempDir tmp;
  const std::string path = tmp.path("t.corc");
  for (const char* stripe :
       {"{\"num_rows\":25,\"columns\":[{\"row_groups\":[%G,%G]}]}",
        "{\"num_rows\":0,\"columns\":[{\"row_groups\":[%G]}]}"}) {
    std::string body = stripe;
    for (size_t at = body.find("%G"); at != std::string::npos;
         at = body.find("%G")) {
      body.replace(at, 2, kGroup);
    }
    const std::string footer =
        "{\"fields\":[{\"name\":\"id\",\"type\":1}],\"rows_per_group\":10,"
        "\"num_rows\":25,\"stripes\":[" + body + "]}";
    WriteFileBytes(path, ForgeV1File(footer));
    CorcReader reader(path);
    const Status st = reader.Open();
    ASSERT_TRUE(st.IsCorruption()) << stripe << ": " << st;
    EXPECT_NE(st.message().find("row group count"), std::string::npos) << st;
  }
}

TEST(CorcReaderTest, HugeStringLengthIsCorruptionNotCrash) {
  // A forged per-row string length of 0xFFFFFFFF: the old bounds check
  // computed `p + len` — past-the-end pointer arithmetic (UB) — before
  // comparing; the remaining-length form must reject it cleanly.
  TempDir tmp;
  const std::string path = tmp.path("t.corc");
  std::string bytes = "CORC1";
  bytes.push_back('\0');                    // 1 row, not null
  bytes.append("\xFF\xFF\xFF\xFF", 4);      // len = UINT32_MAX, no data
  const std::string footer =
      "{\"fields\":[{\"name\":\"s\",\"type\":3}],\"rows_per_group\":100,"
      "\"num_rows\":1,\"stripes\":[{\"num_rows\":1,\"columns\":[{"
      "\"row_groups\":[{\"offset\":5,\"length\":5,\"min\":null,\"max\":null,"
      "\"nulls\":0,\"values\":1}]}]}]}";
  bytes += footer;
  const uint32_t footer_len = static_cast<uint32_t>(footer.size());
  bytes.append(reinterpret_cast<const char*>(&footer_len), 4);
  bytes += "CORC1";
  WriteFileBytes(path, bytes);

  CorcReader reader(path);
  ASSERT_TRUE(reader.Open().ok());
  auto batch = reader.ReadAll(nullptr);
  ASSERT_FALSE(batch.ok());
  EXPECT_TRUE(batch.status().IsCorruption()) << batch.status();
}

// ---- Footer stat type coercion (pruning correctness) ----

TEST(CorcReaderTest, ReloadedDoubleStatsKeepTheirDeclaredType) {
  // An integral double (1234567.0) serializes as "1234567" in the footer
  // JSON and reparses as Int64. Value::Compare's mixed-type fallback is
  // textual, and Int64 renders "1234567" while the Double it stood for
  // renders "1.23457e+06" — so without coercion an Eq sarg against the
  // matching string literal mis-ordered and pruned the group its match
  // lives in. Open must hand back Double-typed stats.
  TempDir tmp;
  const std::string path = tmp.path("t.corc");
  Schema schema;
  schema.AddField("score", TypeKind::kDouble);
  CorcWriter writer(path, schema, CorcWriterOptions{});
  ASSERT_TRUE(writer.Open().ok());
  ASSERT_TRUE(writer.AppendRow({Value::Double(1234567.0)}).ok());
  ASSERT_TRUE(writer.Close().ok());

  CorcReader reader(path);
  ASSERT_TRUE(reader.Open().ok());
  const ColumnStats& stats =
      reader.footer().stripes[0].columns[0].row_groups[0].stats;
  EXPECT_TRUE(stats.min.is_double()) << stats.min.ToString();
  EXPECT_TRUE(stats.max.is_double()) << stats.max.ToString();

  const Value literal = Value::String(Value::Double(1234567.0).ToString());
  SearchArgument sarg;
  sarg.AddLeaf(SargLeaf{"score", SargOp::kEq, literal});
  auto include = reader.ComputeRowGroupInclusion(0, sarg);
  ASSERT_TRUE(include.ok());
  ASSERT_EQ(include->size(), 1u);
  // The group's single row compares equal to the literal, so pruning must
  // keep it.
  EXPECT_EQ(Value::Double(1234567.0).Compare(literal), 0);
  EXPECT_TRUE((*include)[0]);
}

TEST(CorcReaderTest, MistypedFooterStatsAreCorruption) {
  // A stat whose JSON type cannot represent the column's declared type
  // (string stat on an int column) is a forged or corrupt directory.
  TempDir tmp;
  const std::string path = tmp.path("t.corc");
  const std::string footer =
      "{\"fields\":[{\"name\":\"id\",\"type\":1}],\"rows_per_group\":100,"
      "\"num_rows\":2,\"stripes\":[{\"num_rows\":2,\"columns\":[{"
      "\"row_groups\":[{\"offset\":5,\"length\":18,\"min\":\"abc\","
      "\"max\":\"xyz\",\"nulls\":0,\"values\":2}]}]}]}";
  WriteFileBytes(path, ForgeV1File(footer));
  CorcReader reader(path);
  const Status st = reader.Open();
  ASSERT_TRUE(st.IsCorruption()) << st;
  EXPECT_NE(st.message().find("stat type"), std::string::npos) << st;
}

TEST(CorcPropertyTest, PruningNeverDropsAMatchingRowGroup) {
  // Differential property over randomized data and predicates, for both
  // format versions: any row group containing a row that matches the
  // predicate (by Value::Compare, the same ordering pruning uses) must be
  // included by ComputeRowGroupInclusion. Inclusion may be conservative
  // (kMaybe on non-matching groups) but must never be wrong.
  Rng rng(314159);
  for (int iter = 0; iter < 20; ++iter) {
    TempDir tmp;
    const std::string path = tmp.path("t.corc");
    Schema schema;
    schema.AddField("v", TypeKind::kDouble);
    CorcWriterOptions options;
    options.rows_per_group = 4;
    options.format_version = iter % 2 ? kCorcVersionV3 : kCorcVersion;
    CorcWriter writer(path, schema, options);
    ASSERT_TRUE(writer.Open().ok());
    std::vector<Value> values;
    const int rows = 20 + static_cast<int>(rng.NextBounded(40));
    for (int i = 0; i < rows; ++i) {
      // Mostly integral doubles (the type-drift hazard), some large enough
      // that Int64 and Double renderings diverge, occasional nulls.
      Value v = rng.NextBool(0.1)
                    ? Value::Null()
                    : Value::Double(static_cast<double>(
                          rng.NextInt(-3, 3) * 1234567));
      ASSERT_TRUE(writer.AppendRow({v}).ok());
      values.push_back(std::move(v));
    }
    ASSERT_TRUE(writer.Close().ok());

    CorcReader reader(path);
    ASSERT_TRUE(reader.Open().ok());

    const SargOp ops[] = {SargOp::kEq, SargOp::kNe, SargOp::kLt,
                          SargOp::kLe, SargOp::kGt, SargOp::kGe};
    for (const SargOp op : ops) {
      // Literal drawn from the same distribution, as Double or as its
      // string rendering (the mixed-type comparison path).
      const Value base =
          Value::Double(static_cast<double>(rng.NextInt(-3, 3) * 1234567));
      const Value literal =
          rng.NextBool(0.5) ? base : Value::String(base.ToString());
      SearchArgument sarg;
      sarg.AddLeaf(SargLeaf{"v", op, literal});
      auto include = reader.ComputeRowGroupInclusion(0, sarg);
      ASSERT_TRUE(include.ok());
      for (size_t g = 0; g < include->size(); ++g) {
        bool group_has_match = false;
        for (size_t r = g * 4; r < std::min<size_t>((g + 1) * 4, values.size());
             ++r) {
          const Value& v = values[r];
          if (v.is_null()) continue;
          const int cmp = v.Compare(literal);
          bool match = false;
          switch (op) {
            case SargOp::kEq: match = cmp == 0; break;
            case SargOp::kNe: match = cmp != 0; break;
            case SargOp::kLt: match = cmp < 0; break;
            case SargOp::kLe: match = cmp <= 0; break;
            case SargOp::kGt: match = cmp > 0; break;
            case SargOp::kGe: match = cmp >= 0; break;
            default: break;
          }
          if (match) {
            group_has_match = true;
            break;
          }
        }
        if (group_has_match) {
          EXPECT_TRUE((*include)[g])
              << "iter " << iter << " op " << static_cast<int>(op)
              << " literal " << literal.ToString() << " group " << g;
        }
      }
    }
  }
}

}  // namespace
}  // namespace maxson::storage
