#include <filesystem>

#include "catalog/catalog.h"
#include "core/maxson.h"
#include "engine/engine.h"
#include "gtest/gtest.h"
#include "storage/corc_writer.h"
#include "storage/file_system.h"
#include "xml/xml_parser.h"
#include "xml/xml_path.h"
#include "xml/xml_value.h"

namespace maxson::xml {
namespace {

TEST(XmlParserTest, ParsesElementsAttributesText) {
  auto doc = ParseXml(
      R"(<order id="42" priority='high'><item sku="a1">Apples</item><qty>3</qty></order>)");
  ASSERT_TRUE(doc.ok()) << doc.status();
  const XmlElement& root = **doc;
  EXPECT_EQ(root.tag(), "order");
  ASSERT_NE(root.FindAttribute("id"), nullptr);
  EXPECT_EQ(*root.FindAttribute("id"), "42");
  EXPECT_EQ(*root.FindAttribute("priority"), "high");
  ASSERT_NE(root.FindChild("item"), nullptr);
  EXPECT_EQ(root.FindChild("item")->text(), "Apples");
  EXPECT_EQ(root.FindChild("qty")->text(), "3");
  EXPECT_EQ(root.FindAttribute("missing"), nullptr);
  EXPECT_EQ(root.FindChild("missing"), nullptr);
}

TEST(XmlParserTest, HandlesDeclarationCommentsCdataEntities) {
  auto doc = ParseXml(
      "<?xml version=\"1.0\"?><!-- prelude -->"
      "<r><a>&lt;tag&gt; &amp; &quot;x&quot; &#65;</a>"
      "<b><![CDATA[raw <unparsed> & data]]></b></r>");
  ASSERT_TRUE(doc.ok()) << doc.status();
  EXPECT_EQ((*doc)->FindChild("a")->text(), "<tag> & \"x\" A");
  EXPECT_EQ((*doc)->FindChild("b")->text(), "raw <unparsed> & data");
}

TEST(XmlParserTest, SelfClosingAndNested) {
  auto doc = ParseXml("<a><b/><c><d x='1'/></c><b>two</b></a>");
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ((*doc)->FindChild("b", 0)->text(), "");
  EXPECT_EQ((*doc)->FindChild("b", 1)->text(), "two");
  EXPECT_EQ(*(*doc)->FindChild("c")->FindChild("d")->FindAttribute("x"), "1");
}

TEST(XmlParserTest, RejectsMalformedInput) {
  EXPECT_FALSE(ParseXml("").ok());
  EXPECT_FALSE(ParseXml("<a>").ok());
  EXPECT_FALSE(ParseXml("<a></b>").ok());
  EXPECT_FALSE(ParseXml("<a attr></a>").ok());
  EXPECT_FALSE(ParseXml("<a x=unquoted></a>").ok());
  EXPECT_FALSE(ParseXml("<a>&unknown;</a>").ok());
  EXPECT_FALSE(ParseXml("<a></a><b></b>").ok());
}

TEST(XmlParserTest, WriteParseRoundTrip) {
  const char* text =
      R"(<log level="warn"><msg>disk &lt;90%&gt; full</msg><code>17</code></log>)";
  auto doc = ParseXml(text);
  ASSERT_TRUE(doc.ok());
  auto again = ParseXml(WriteXml(**doc));
  ASSERT_TRUE(again.ok()) << again.status();
  EXPECT_EQ((*again)->FindChild("msg")->text(), "disk <90%> full");
  EXPECT_EQ(*(*again)->FindAttribute("level"), "warn");
}

TEST(XmlPathTest, ParseAndToString) {
  auto path = XmlPath::Parse("/order/items/item[3]/@sku");
  ASSERT_TRUE(path.ok()) << path.status();
  ASSERT_EQ(path->steps().size(), 4u);
  EXPECT_EQ(path->steps()[2].index, 2);  // 1-based in text, 0-based stored
  EXPECT_EQ(path->steps()[3].kind, XmlPathStep::Kind::kAttribute);
  EXPECT_EQ(path->ToString(), "/order/items/item[3]/@sku");
}

TEST(XmlPathTest, RejectsBadPaths) {
  EXPECT_FALSE(XmlPath::Parse("").ok());
  EXPECT_FALSE(XmlPath::Parse("order/item").ok());
  EXPECT_FALSE(XmlPath::Parse("/order//item").ok());
  EXPECT_FALSE(XmlPath::Parse("/order/@attr/more").ok());
  EXPECT_FALSE(XmlPath::Parse("/order/item[0]").ok());  // 1-based
  EXPECT_FALSE(XmlPath::Parse("/order/item[x]").ok());
}

TEST(XmlPathTest, EvaluatesTextAndAttributes) {
  const char* text =
      R"(<order id="42"><item sku="a">Apples</item><item sku="b">Pears</item><total>7.5</total></order>)";
  auto eval = [&](const char* p) {
    auto path = XmlPath::Parse(p);
    EXPECT_TRUE(path.ok());
    return GetXmlObject(text, *path);
  };
  EXPECT_EQ(*eval("/order/@id"), "42");
  EXPECT_EQ(*eval("/order/item"), "Apples");
  EXPECT_EQ(*eval("/order/item[2]"), "Pears");
  EXPECT_EQ(*eval("/order/item[2]/@sku"), "b");
  EXPECT_EQ(*eval("/order/total"), "7.5");
  EXPECT_EQ(eval("/order/missing").status().code(), StatusCode::kNotFound);
  EXPECT_EQ(eval("/wrongroot/@id").status().code(), StatusCode::kNotFound);
  EXPECT_EQ(eval("/order/item[9]").status().code(), StatusCode::kNotFound);
}

TEST(XmlPathTest, IsXmlPathTextHeuristic) {
  EXPECT_TRUE(IsXmlPathText("/a/b"));
  EXPECT_FALSE(IsXmlPathText("$.a.b"));
  EXPECT_FALSE(IsXmlPathText(""));
}

// ---- End-to-end: Maxson caching over an XML column ----

class XmlMaxsonTest : public ::testing::Test {
 protected:
  void SetUp() override {
    root_ = (std::filesystem::temp_directory_path() /
             ("maxson_xml_test_" + std::to_string(::getpid())))
                .string();
    ASSERT_TRUE(storage::FileSystem::RemoveAll(root_).ok());
    const std::string dir = root_ + "/warehouse/db/events";
    ASSERT_TRUE(storage::FileSystem::MakeDirs(dir).ok());
    storage::Schema schema;
    schema.AddField("id", storage::TypeKind::kInt64);
    schema.AddField("payload", storage::TypeKind::kString);
    for (int file = 0; file < 2; ++file) {
      storage::CorcWriterOptions options;
      options.rows_per_group = 50;
      storage::CorcWriter writer(
          dir + "/" + storage::FileSystem::PartFileName(file), schema,
          options);
      ASSERT_TRUE(writer.Open().ok());
      for (int i = 0; i < 200; ++i) {
        const int row = file * 200 + i;
        const std::string xml =
            "<event id=\"" + std::to_string(row) + "\"><kind>k" +
            std::to_string(row % 5) + "</kind><value>" +
            std::to_string(row * 2) + "</value></event>";
        ASSERT_TRUE(writer
                        .AppendRow({storage::Value::Int64(row),
                                    storage::Value::String(xml)})
                        .ok());
      }
      ASSERT_TRUE(writer.Close().ok());
    }
    ASSERT_TRUE(catalog_.CreateDatabase("db").ok());
    catalog::TableInfo info;
    info.database = "db";
    info.name = "events";
    info.schema = schema;
    info.location = dir;
    ASSERT_TRUE(catalog_.CreateTable(info).ok());
  }
  void TearDown() override {
    ASSERT_TRUE(storage::FileSystem::RemoveAll(root_).ok());
  }

  std::string root_;
  catalog::Catalog catalog_;
};

TEST_F(XmlMaxsonTest, GetXmlObjectWorksInQueries) {
  engine::EngineConfig config;
  config.default_database = "db";
  engine::QueryEngine engine(&catalog_, config);
  auto result = engine.Execute(
      "SELECT get_xml_object(payload, '/event/kind') AS k, COUNT(*) AS n "
      "FROM db.events GROUP BY get_xml_object(payload, '/event/kind') "
      "ORDER BY k");
  ASSERT_TRUE(result.ok()) << result.status();
  ASSERT_EQ(result->batch.num_rows(), 5u);
  EXPECT_EQ(result->batch.column(0).GetValue(0).ToString(), "k0");
  EXPECT_EQ(result->batch.column(1).GetValue(0).int64_value(), 80);
  EXPECT_GT(result->metrics.parse.records_parsed, 0u);
}

TEST_F(XmlMaxsonTest, XmlPathsAreCachedLikeJsonPaths) {
  core::MaxsonConfig config;
  config.cache_root = root_ + "/cache";
  config.engine.default_database = "db";
  config.predictor.epochs = 5;
  core::MaxsonSession session(&catalog_, config);

  workload::JsonPathLocation kind;
  kind.database = "db";
  kind.table = "events";
  kind.column = "payload";
  kind.path = "/event/kind";
  workload::JsonPathLocation value = kind;
  value.path = "/event/value";
  for (int day = 0; day < 14; ++day) {
    for (int rep = 0; rep < 3; ++rep) {
      workload::QueryRecord q;
      q.date = day;
      q.paths = {kind, value};
      session.RecordQuery(q);
    }
  }
  ASSERT_TRUE(session.TrainPredictor(8, 13).ok());
  auto report = session.RunMidnightCycle(14);
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_EQ(report->selected.size(), 2u);

  const std::string sql =
      "SELECT get_xml_object(payload, '/event/kind') AS k, "
      "get_xml_object(payload, '/event/value') AS v FROM db.events "
      "WHERE id < 50";
  auto cached = session.Execute(sql);
  auto plain = session.ExecuteWithoutCache(sql);
  ASSERT_TRUE(cached.ok()) << cached.status();
  ASSERT_TRUE(plain.ok()) << plain.status();
  ASSERT_EQ(cached->batch.num_rows(), plain->batch.num_rows());
  for (size_t r = 0; r < cached->batch.num_rows(); ++r) {
    EXPECT_EQ(cached->batch.column(0).GetValue(r).ToString(),
              plain->batch.column(0).GetValue(r).ToString());
    EXPECT_EQ(cached->batch.column(1).GetValue(r).ToString(),
              plain->batch.column(1).GetValue(r).ToString());
  }
  EXPECT_EQ(cached->metrics.parse.records_parsed, 0u);  // no XML parsing
  EXPECT_GT(plain->metrics.parse.records_parsed, 0u);
}

}  // namespace
}  // namespace maxson::xml
