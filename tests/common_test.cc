#include <algorithm>
#include <cmath>
#include <numeric>
#include <set>

#include "common/random.h"
#include "common/result.h"
#include "common/status.h"
#include "common/string_util.h"
#include "common/time_util.h"
#include "gtest/gtest.h"

namespace maxson {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status st;
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kOk);
  EXPECT_EQ(st.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status st = Status::NotFound("missing table");
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kNotFound);
  EXPECT_EQ(st.message(), "missing table");
  EXPECT_EQ(st.ToString(), "not found: missing table");
}

TEST(StatusTest, EveryFactoryProducesMatchingCode) {
  EXPECT_EQ(Status::InvalidArgument("x").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(Status::AlreadyExists("x").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::IoError("x").code(), StatusCode::kIoError);
  EXPECT_EQ(Status::ParseError("x").code(), StatusCode::kParseError);
  EXPECT_EQ(Status::Unimplemented("x").code(), StatusCode::kUnimplemented);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
}

Status FailsWhenNegative(int x) {
  if (x < 0) return Status::InvalidArgument("negative");
  return Status::Ok();
}

Status UsesReturnNotOk(int x) {
  MAXSON_RETURN_NOT_OK(FailsWhenNegative(x));
  return Status::Ok();
}

TEST(StatusTest, ReturnNotOkPropagates) {
  EXPECT_TRUE(UsesReturnNotOk(1).ok());
  EXPECT_EQ(UsesReturnNotOk(-1).code(), StatusCode::kInvalidArgument);
}

Result<int> ParsePositive(int x) {
  if (x <= 0) return Status::OutOfRange("not positive");
  return x;
}

TEST(ResultTest, HoldsValueOrStatus) {
  Result<int> ok = ParsePositive(7);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok.value(), 7);
  EXPECT_EQ(*ok, 7);

  Result<int> bad = ParsePositive(0);
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kOutOfRange);
  EXPECT_EQ(bad.value_or(42), 42);
}

Result<int> DoubledOrFail(int x) {
  MAXSON_ASSIGN_OR_RETURN(int v, ParsePositive(x));
  return v * 2;
}

TEST(ResultTest, AssignOrReturnPropagates) {
  EXPECT_EQ(DoubledOrFail(4).value(), 8);
  EXPECT_FALSE(DoubledOrFail(-4).ok());
}

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.Next() == b.Next()) ++same;
  }
  EXPECT_LT(same, 4);
}

TEST(RngTest, BoundedStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.NextBounded(13), 13u);
    const int64_t v = rng.NextInt(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
  }
}

TEST(RngTest, DoubleInUnitInterval) {
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) {
    const double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, GaussianHasRoughlyCorrectMoments) {
  Rng rng(17);
  const int n = 20000;
  double sum = 0.0;
  double sum_sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = rng.NextGaussian(3.0, 2.0);
    sum += x;
    sum_sq += x * x;
  }
  const double mean = sum / n;
  const double var = sum_sq / n - mean * mean;
  EXPECT_NEAR(mean, 3.0, 0.1);
  EXPECT_NEAR(var, 4.0, 0.3);
}

TEST(RngTest, ShufflePreservesElements) {
  Rng rng(3);
  std::vector<int> v(50);
  std::iota(v.begin(), v.end(), 0);
  std::vector<int> orig = v;
  rng.Shuffle(&v);
  EXPECT_NE(v, orig);  // astronomically unlikely to be identity
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, orig);
}

TEST(ZipfTest, PmfSumsToOne) {
  ZipfSampler zipf(100, 1.1);
  double total = 0.0;
  for (size_t r = 0; r < zipf.n(); ++r) total += zipf.Pmf(r);
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(ZipfTest, HeadDominatesTail) {
  ZipfSampler zipf(1000, 1.2);
  Rng rng(5);
  std::vector<int> counts(1000, 0);
  const int n = 50000;
  for (int i = 0; i < n; ++i) ++counts[zipf.Sample(&rng)];
  // Top 10% of ranks should absorb well over half of the samples.
  int head = 0;
  for (int r = 0; r < 100; ++r) head += counts[r];
  EXPECT_GT(head, n / 2);
  // Rank 0 must be the most frequent.
  EXPECT_EQ(std::max_element(counts.begin(), counts.end()) - counts.begin(), 0);
}

TEST(ZipfTest, SamplesWithinDomain) {
  ZipfSampler zipf(7, 0.8);
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(zipf.Sample(&rng), 7u);
}

TEST(StringUtilTest, SplitAndJoinRoundTrip) {
  const std::vector<std::string> parts = {"a", "", "bc", "d"};
  EXPECT_EQ(SplitString("a,,bc,d", ','), parts);
  EXPECT_EQ(JoinStrings(parts, ","), "a,,bc,d");
}

TEST(StringUtilTest, SplitSingleToken) {
  EXPECT_EQ(SplitString("abc", ','), std::vector<std::string>{"abc"});
  EXPECT_EQ(SplitString("", ','), std::vector<std::string>{""});
}

TEST(StringUtilTest, StripWhitespace) {
  EXPECT_EQ(StripWhitespace("  x y \t\n"), "x y");
  EXPECT_EQ(StripWhitespace(""), "");
  EXPECT_EQ(StripWhitespace(" \t "), "");
}

TEST(StringUtilTest, PrefixSuffix) {
  EXPECT_TRUE(StartsWith("part-00001.corc", "part-"));
  EXPECT_FALSE(StartsWith("x", "part-"));
  EXPECT_TRUE(EndsWith("part-00001.corc", ".corc"));
  EXPECT_FALSE(EndsWith("a.orc", ".corc"));
}

TEST(StringUtilTest, CaseHelpers) {
  EXPECT_EQ(ToLower("SELECT Foo"), "select foo");
  EXPECT_TRUE(EqualsIgnoreCase("SeLeCt", "select"));
  EXPECT_FALSE(EqualsIgnoreCase("selec", "select"));
}

TEST(StringUtilTest, FormatBytes) {
  EXPECT_EQ(FormatBytes(512), "512 B");
  EXPECT_EQ(FormatBytes(1536), "1.5 KiB");
  EXPECT_EQ(FormatBytes(3u << 20), "3.0 MiB");
}

TEST(TimeUtilTest, FormatDate) {
  EXPECT_EQ(FormatDate(0), "2019-01-01");
  EXPECT_EQ(FormatDate(31), "2019-02-01");
  EXPECT_EQ(FormatDate(365), "2020-01-01");
  EXPECT_EQ(FormatDate(-1), "unknown");
}

TEST(TimeUtilTest, StopwatchAdvances) {
  Stopwatch sw;
  double sink = 0.0;
  for (int i = 0; i < 100000; ++i) sink += std::sqrt(static_cast<double>(i));
  ASSERT_GT(sink, 0.0);  // prevent the loop from being optimized away
  EXPECT_GT(sw.ElapsedSeconds(), 0.0);
  EXPECT_GE(sw.ElapsedMillis(), sw.ElapsedSeconds() * 1000.0 * 0.5);
}

}  // namespace
}  // namespace maxson
