// Durability and crash-consistency tests: a corruption matrix that damages
// every region of a CORC cache file and asserts queries still return rows
// byte-identical to a cache-disabled run (never wrong data, never a crash),
// and a kill-at-every-fault-point midnight cycle driven by the storage
// fault injector that must leave every table queryable and converge on the
// next clean run.

#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <functional>
#include <string>
#include <vector>

#include "catalog/catalog.h"
#include "core/maxson.h"
#include "gtest/gtest.h"
#include "storage/corc_format.h"
#include "storage/file_system.h"
#include "workload/data_generator.h"

namespace maxson {
namespace {

using catalog::Catalog;
using core::MaxsonConfig;
using core::MaxsonSession;
using storage::FaultInjector;
using storage::FileSystem;
using workload::JsonPathLocation;
using workload::JsonTableSpec;

/// Disarms the process-wide fault injector when a test scope ends, so a
/// failing assertion cannot leak an armed injector into later tests.
class FaultGuard {
 public:
  ~FaultGuard() { EXPECT_TRUE(FaultInjector::Instance().Configure("off").ok()); }
};

std::string ReadBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

void WriteBytes(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

class DurabilityTest : public ::testing::Test {
 protected:
  void SetUp() override {
    root_ = (std::filesystem::temp_directory_path() /
             ("maxson_durability_" + std::to_string(::getpid())))
                .string();
    ASSERT_TRUE(FileSystem::RemoveAll(root_).ok());
  }
  void TearDown() override {
    ASSERT_TRUE(FaultInjector::Instance().Configure("off").ok());
    ASSERT_TRUE(FileSystem::RemoveAll(root_).ok());
  }

  void MakeTable(const std::string& table, uint64_t rows) {
    JsonTableSpec spec;
    spec.database = "db";
    spec.table = table;
    spec.num_properties = 10;
    spec.avg_json_bytes = 300;
    spec.rows = rows;
    spec.rows_per_file = 700;
    spec.rows_per_group = 100;
    spec.seed = rows * 17 + 5;
    auto generated = workload::GenerateJsonTable(spec, root_ + "/warehouse",
                                                 3, &catalog_);
    ASSERT_TRUE(generated.ok()) << generated.status();
  }

  MaxsonSession MakeSession() {
    MaxsonConfig config;
    config.cache_root = root_ + "/cache";
    config.cache_budget_bytes = 64ull << 20;
    config.engine.default_database = "db";
    config.predictor.epochs = 5;
    return MaxsonSession(&catalog_, config);
  }

  void FeedDailyHistory(MaxsonSession* session, const std::string& table,
                        const std::vector<std::string>& paths, int days) {
    for (int day = 0; day < days; ++day) {
      for (int rep = 0; rep < 3; ++rep) {
        workload::QueryRecord q;
        q.date = day;
        for (const std::string& p : paths) {
          JsonPathLocation l;
          l.database = "db";
          l.table = table;
          l.column = "payload";
          l.path = p;
          q.paths.push_back(l);
        }
        session->RecordQuery(q);
      }
    }
  }

  /// Asserts `result` matches `expected` row for row, value for value.
  template <typename R>
  void ExpectSameRows(const R& result, const R& expected,
                      const std::string& context) {
    ASSERT_EQ(result->batch.num_rows(), expected->batch.num_rows()) << context;
    ASSERT_EQ(result->batch.num_columns(), expected->batch.num_columns())
        << context;
    for (size_t r = 0; r < result->batch.num_rows(); ++r) {
      for (size_t c = 0; c < result->batch.num_columns(); ++c) {
        ASSERT_EQ(result->batch.column(c).GetValue(r).ToString(),
                  expected->batch.column(c).GetValue(r).ToString())
            << context << " row " << r << " col " << c;
      }
    }
  }

  std::string root_;
  Catalog catalog_;
};

TEST_F(DurabilityTest, EnvVarArmsInjectorAtFirstUse) {
  // Run standalone with MAXSON_FAULT_INJECT set (tools/ci.sh does); the
  // very first Instance() call must come up armed with that spec. Declared
  // first in this file so no earlier test has disarmed or counted it down.
  const char* env = std::getenv("MAXSON_FAULT_INJECT");
  if (env == nullptr || *env == '\0') {
    GTEST_SKIP() << "MAXSON_FAULT_INJECT not set";
  }
  EXPECT_EQ(FaultInjector::Instance().spec(), std::string(env));
  EXPECT_TRUE(FaultInjector::Instance().enabled());
  ASSERT_TRUE(FaultInjector::Instance().Configure("off").ok());
}

TEST_F(DurabilityTest, CorruptionMatrixNeverReturnsWrongRows) {
  // Damage every structural region of a cache part file in turn. Each query
  // over the damaged cache must either fall back to raw parsing (rows
  // byte-identical to a cache-disabled run, fallback counter bumped) — and
  // with an intact raw table that fallback always succeeds — or fail with a
  // typed error. Wrong rows and crashes are the only unacceptable outcomes.
  MakeTable("t", 1400);
  MaxsonSession session = MakeSession();
  FeedDailyHistory(&session, "t", {"$.f0", "$.f1"}, 14);
  ASSERT_TRUE(session.TrainPredictor(8, 13).ok());
  ASSERT_TRUE(session.RunMidnightCycle(14).ok());

  const std::string sql =
      "SELECT id, get_json_object(payload, '$.f0'), "
      "get_json_object(payload, '$.f1') FROM db.t";
  auto expected = session.ExecuteWithoutCache(sql);
  ASSERT_TRUE(expected.ok()) << expected.status();

  auto cache_splits = FileSystem::ListSplits(root_ + "/cache/db.t");
  ASSERT_TRUE(cache_splits.ok());
  ASSERT_FALSE(cache_splits->empty());
  const std::string victim = (*cache_splits)[0].path;
  const std::string pristine = ReadBytes(victim);
  const size_t size = pristine.size();
  ASSERT_GT(size, 2 * storage::kCorcMagicLen + 13u);
  // v2/v3 tail: [footer_crc u32][footer_len u32][magic]. Locate the footer so
  // a mutation can land squarely inside the JSON text.
  uint32_t footer_len = 0;
  std::memcpy(&footer_len, pristine.data() + size - 9, 4);
  ASSERT_LT(footer_len, size);
  const size_t footer_start = size - 13 - footer_len;

  struct Mutation {
    const char* name;
    std::function<void(std::string*)> apply;
  };
  auto flip = [](size_t at) {
    return [at](std::string* bytes) { (*bytes)[at] ^= 0x40; };
  };
  const std::vector<Mutation> matrix = {
      {"leading-magic", flip(1)},
      {"chunk-data", flip(storage::kCorcMagicLen + 2)},
      {"mid-file", flip(size / 2)},
      {"footer-json", flip(footer_start + footer_len / 2)},
      {"footer-crc-field", flip(size - 13)},
      {"footer-len-field", flip(size - 9)},
      {"trailing-magic", flip(size - 2)},
      {"huge-footer-len",
       [](std::string* bytes) {
         const uint32_t huge = UINT32_MAX - 15;
         std::memcpy(bytes->data() + bytes->size() - 9, &huge, 4);
       }},
      {"truncate-half", [](std::string* bytes) { bytes->resize(bytes->size() / 2); }},
      {"truncate-tiny", [](std::string* bytes) { bytes->resize(3); }},
      {"truncate-empty", [](std::string* bytes) { bytes->clear(); }},
  };

  for (const Mutation& m : matrix) {
    std::string bytes = pristine;
    m.apply(&bytes);
    WriteBytes(victim, bytes);

    auto result = session.Execute(sql);
    ASSERT_TRUE(result.ok()) << m.name << ": " << result.status();
    EXPECT_EQ(result->metrics.cache_corruption_fallbacks, 1u) << m.name;
    ExpectSameRows(result, expected, m.name);

    // Restore and confirm the cache serves cleanly again: the quarantine is
    // per-query, not a permanent invalidation.
    WriteBytes(victim, pristine);
    auto healed = session.Execute(sql);
    ASSERT_TRUE(healed.ok()) << m.name << ": " << healed.status();
    EXPECT_EQ(healed->metrics.cache_corruption_fallbacks, 0u) << m.name;
  }
  EXPECT_GE(session.metrics().GetCounter("maxson_cache_corruption_total")
                ->value(),
            matrix.size());
}

TEST_F(DurabilityTest, CorruptPrimaryFileFailsInsteadOfGuessing) {
  // When the RAW file itself is damaged, the fallback re-parse hits the same
  // corruption and the query must fail with a typed error — degraded mode
  // repairs cache damage only, it never invents rows.
  MakeTable("t", 700);
  MaxsonSession session = MakeSession();
  FeedDailyHistory(&session, "t", {"$.f0"}, 14);
  ASSERT_TRUE(session.TrainPredictor(8, 13).ok());
  ASSERT_TRUE(session.RunMidnightCycle(14).ok());

  auto raw_splits = FileSystem::ListSplits(root_ + "/warehouse/db/t");
  ASSERT_TRUE(raw_splits.ok());
  ASSERT_FALSE(raw_splits->empty());
  std::string bytes = ReadBytes((*raw_splits)[0].path);
  bytes.resize(bytes.size() / 2);  // tears off the footer: unreadable for sure
  WriteBytes((*raw_splits)[0].path, bytes);

  auto result =
      session.Execute("SELECT id, get_json_object(payload, '$.f0') FROM db.t");
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsCorruption()) << result.status();
}

TEST_F(DurabilityTest, KillAtEveryFaultPointMidnightConverges) {
  // Simulate a process killed at the Nth write-side operation of the
  // midnight cache build, for every N until a run completes untouched.
  // After every faulted run the table must still answer queries with
  // correct rows (from whatever mix of surviving cache and raw parsing),
  // and one clean midnight afterwards must converge to a working cache.
  MakeTable("t", 700);
  MaxsonSession session = MakeSession();
  FeedDailyHistory(&session, "t", {"$.f0", "$.f1"}, 14);
  ASSERT_TRUE(session.TrainPredictor(8, 13).ok());

  const std::string sql =
      "SELECT id, get_json_object(payload, '$.f0') FROM db.t";
  auto expected = session.ExecuteWithoutCache(sql);
  ASSERT_TRUE(expected.ok()) << expected.status();

  FaultGuard guard;
  bool fail_clean = false;
  bool torn_clean = false;
  const int kMaxFaultPoints = 300;
  for (int n = 1; n <= kMaxFaultPoints && !(fail_clean && torn_clean); ++n) {
    for (const char* mode : {"fail", "torn"}) {
      if ((std::string(mode) == "fail" && fail_clean) ||
          (std::string(mode) == "torn" && torn_clean)) {
        continue;
      }
      const std::string spec = std::string(mode) + ":" + std::to_string(n);
      ASSERT_TRUE(FaultInjector::Instance().Configure(spec).ok());
      auto report = session.RunMidnightCycle(14);
      const bool tripped = FaultInjector::Instance().tripped();
      ASSERT_TRUE(FaultInjector::Instance().Configure("off").ok());
      if (!tripped) {
        // The whole build used fewer than n counted ops: nothing faulted,
        // so the cycle must have succeeded and this mode's sweep is done.
        ASSERT_TRUE(report.ok()) << spec << ": " << report.status();
        (std::string(mode) == "fail" ? fail_clean : torn_clean) = true;
      }

      // Whatever the cycle left behind, queries must return correct rows.
      auto result = session.Execute(sql);
      ASSERT_TRUE(result.ok()) << spec << ": " << result.status();
      ExpectSameRows(result, expected, spec);

      // No half-published artifacts may be visible as splits: every listed
      // cache file must load or the query above would have re-derived it,
      // and staged ".tmp"/".staging" names never match the ".corc" listing.
      for (const std::string& dir : {root_ + "/cache/db.t"}) {
        if (!FileSystem::Exists(dir)) continue;
        auto splits = FileSystem::ListSplits(dir);
        ASSERT_TRUE(splits.ok());
        for (const storage::Split& split : *splits) {
          EXPECT_EQ(split.path.find(".tmp"), std::string::npos) << spec;
        }
      }
    }
  }
  ASSERT_TRUE(fail_clean && torn_clean)
      << "midnight cycle still faulting after " << kMaxFaultPoints
      << " fault points; sweep did not cover the full build";

  // Convergence: a clean midnight after the crash storm ends with a fully
  // working cache — queries hit it, return identical rows, and no
  // corruption fallback fires.
  auto report = session.RunMidnightCycle(14);
  ASSERT_TRUE(report.ok()) << report.status();
  auto result = session.Execute(sql);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->metrics.cache_corruption_fallbacks, 0u);
  ExpectSameRows(result, expected, "post-convergence");
}

TEST_F(DurabilityTest, ShortReadSurfacesAsCorruptionAndFallsBack) {
  // A read that returns fewer bytes than asked (torn page, truncated block
  // device) must be caught by the length check and heal through fallback.
  MakeTable("t", 700);
  MaxsonSession session = MakeSession();
  FeedDailyHistory(&session, "t", {"$.f0"}, 14);
  ASSERT_TRUE(session.TrainPredictor(8, 13).ok());
  ASSERT_TRUE(session.RunMidnightCycle(14).ok());

  const std::string sql =
      "SELECT id, get_json_object(payload, '$.f0') FROM db.t";
  auto expected = session.ExecuteWithoutCache(sql);
  ASSERT_TRUE(expected.ok()) << expected.status();

  FaultGuard guard;
  core::SessionUpdate update;
  update.fault_injection = "short:1";
  ASSERT_TRUE(session.UpdateConfig(update).ok());
  auto result = session.Execute(sql);
  ASSERT_TRUE(FaultInjector::Instance().Configure("off").ok());
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_GE(result->metrics.cache_corruption_fallbacks, 1u);
  ExpectSameRows(result, expected, "short-read");
}

TEST_F(DurabilityTest, CorcEncodingKnobSwitchesCacheFormatAndPreservesRows) {
  // The corcencoding session knob selects the cache file format: off writes
  // v2 files byte-compatible with pre-encoding builds, on (the default)
  // writes v3 with adaptively encoded chunks. Query results must be
  // identical in both modes, and a v3 cache must keep serving after the
  // knob is turned off (readers never depend on the writer-side setting).
  MakeTable("t", 1400);
  MaxsonSession session = MakeSession();
  FeedDailyHistory(&session, "t", {"$.f0", "$.f1"}, 14);
  ASSERT_TRUE(session.TrainPredictor(8, 13).ok());

  const std::string sql =
      "SELECT id, get_json_object(payload, '$.f0'), "
      "get_json_object(payload, '$.f1') FROM db.t";
  auto expected = session.ExecuteWithoutCache(sql);
  ASSERT_TRUE(expected.ok()) << expected.status();

  auto cache_magics = [&]() {
    auto splits = FileSystem::ListSplits(root_ + "/cache/db.t");
    EXPECT_TRUE(splits.ok());
    std::vector<std::string> magics;
    for (const auto& split : *splits) {
      magics.push_back(ReadBytes(split.path).substr(0, storage::kCorcMagicLen));
    }
    return magics;
  };

  // Knob off: the cycle rewrites the cache in the v2 layout.
  core::SessionUpdate off;
  off.corc_encoding = false;
  ASSERT_TRUE(session.UpdateConfig(off).ok());
  EXPECT_FALSE(session.stats().corc_encoding_enabled);
  ASSERT_TRUE(session.RunMidnightCycle(14).ok());
  std::vector<std::string> magics = cache_magics();
  ASSERT_FALSE(magics.empty());
  for (const std::string& magic : magics) EXPECT_EQ(magic, "CORC2");
  auto v2_result = session.Execute(sql);
  ASSERT_TRUE(v2_result.ok()) << v2_result.status();
  EXPECT_EQ(v2_result->metrics.cache_corruption_fallbacks, 0u);
  ExpectSameRows(v2_result, expected, "v2 cache");

  // Knob back on: the next cycle produces v3 files and the encoding
  // byte-accounting metrics start moving.
  const uint64_t encoded_before =
      session.metrics().GetCounter("maxson_corc_encoded_bytes_total")->value();
  core::SessionUpdate on;
  on.corc_encoding = true;
  ASSERT_TRUE(session.UpdateConfig(on).ok());
  EXPECT_TRUE(session.stats().corc_encoding_enabled);
  ASSERT_TRUE(session.RunMidnightCycle(14).ok());
  magics = cache_magics();
  ASSERT_FALSE(magics.empty());
  for (const std::string& magic : magics) EXPECT_EQ(magic, "CORC3");
  EXPECT_GT(
      session.metrics().GetCounter("maxson_corc_encoded_bytes_total")->value(),
      encoded_before);
  auto v3_result = session.Execute(sql);
  ASSERT_TRUE(v3_result.ok()) << v3_result.status();
  EXPECT_EQ(v3_result->metrics.cache_corruption_fallbacks, 0u);
  ExpectSameRows(v3_result, expected, "v3 cache");

  // A v3 cache written earlier must survive flipping the knob off: the
  // format version is a writer option, never a read-path gate.
  ASSERT_TRUE(session.UpdateConfig(off).ok());
  auto mixed = session.Execute(sql);
  ASSERT_TRUE(mixed.ok()) << mixed.status();
  EXPECT_EQ(mixed->metrics.cache_corruption_fallbacks, 0u);
  ExpectSameRows(mixed, expected, "v3 cache, knob off");
}

TEST_F(DurabilityTest, EncodedCacheCorruptionStillFallsBackToRaw) {
  // Bit damage inside an ENCODED (v3) chunk must behave exactly like plain
  // chunk damage: checksum or decode rejection, silent fallback to raw
  // parsing, identical rows. Decoders must never crash or emit wrong data.
  MakeTable("t", 1400);
  MaxsonSession session = MakeSession();
  FeedDailyHistory(&session, "t", {"$.f0", "$.f1"}, 14);
  ASSERT_TRUE(session.TrainPredictor(8, 13).ok());
  ASSERT_TRUE(session.RunMidnightCycle(14).ok());

  const std::string sql =
      "SELECT id, get_json_object(payload, '$.f0') FROM db.t";
  auto expected = session.ExecuteWithoutCache(sql);
  ASSERT_TRUE(expected.ok()) << expected.status();

  auto cache_splits = FileSystem::ListSplits(root_ + "/cache/db.t");
  ASSERT_TRUE(cache_splits.ok());
  ASSERT_FALSE(cache_splits->empty());
  const std::string victim = (*cache_splits)[0].path;
  const std::string pristine = ReadBytes(victim);
  ASSERT_EQ(pristine.substr(0, storage::kCorcMagicLen), "CORC3");

  // Flip a bit at several depths inside the chunk-data region (everything
  // between the leading magic and the footer holds encoded chunks).
  for (size_t at : {static_cast<size_t>(storage::kCorcMagicLen + 1),
                    pristine.size() / 4, pristine.size() / 3,
                    pristine.size() / 2}) {
    std::string bytes = pristine;
    bytes[at] ^= 0x10;
    WriteBytes(victim, bytes);
    auto result = session.Execute(sql);
    ASSERT_TRUE(result.ok()) << "offset " << at << ": " << result.status();
    EXPECT_EQ(result->metrics.cache_corruption_fallbacks, 1u) << at;
    ExpectSameRows(result, expected, "encoded-chunk-damage");
  }
  WriteBytes(victim, pristine);
  auto healed = session.Execute(sql);
  ASSERT_TRUE(healed.ok()) << healed.status();
  EXPECT_EQ(healed->metrics.cache_corruption_fallbacks, 0u);
}

TEST_F(DurabilityTest, UpdateConfigRejectsMalformedFaultSpecs) {
  MaxsonSession session = MakeSession();
  for (const char* bad : {"fail", "fail:", "fail:0", "fail:x", "bogus:3", ""}) {
    core::SessionUpdate update;
    update.fault_injection = bad;
    EXPECT_FALSE(session.UpdateConfig(update).ok()) << bad;
    EXPECT_EQ(FaultInjector::Instance().spec(), "off") << bad;
  }
  core::SessionUpdate update;
  update.fault_injection = "fail:7";
  ASSERT_TRUE(session.UpdateConfig(update).ok());
  EXPECT_EQ(FaultInjector::Instance().spec(), "fail:7");
  EXPECT_EQ(session.stats().fault_injection, "fail:7");
  update.fault_injection = "off";
  ASSERT_TRUE(session.UpdateConfig(update).ok());
  EXPECT_EQ(FaultInjector::Instance().spec(), "off");
}

}  // namespace
}  // namespace maxson
