// Numerical gradient checks for the sequence models: the analytical
// gradients used by training (BPTT through the LSTM, forward-backward
// through the CRF) must agree with central finite differences of the loss.
// These checks pin down the trickiest code in ml/ far more tightly than
// end-to-end learnability tests can.

#include <cmath>
#include <vector>

#include "common/random.h"
#include "gtest/gtest.h"
#include "ml/crf.h"
#include "ml/lstm.h"
#include "ml/matrix.h"

namespace maxson::ml {
namespace {

/// Builds a small random sequence task.
void MakeSequence(Rng* rng, int steps, int input_size,
                  std::vector<std::vector<double>>* xs,
                  std::vector<int>* labels) {
  xs->clear();
  labels->clear();
  for (int t = 0; t < steps; ++t) {
    std::vector<double> x(input_size);
    for (double& v : x) v = rng->NextGaussian(0, 1);
    xs->push_back(std::move(x));
    labels->push_back(static_cast<int>(rng->NextBounded(2)));
  }
}

/// Softmax cross-entropy loss of LSTM emissions against labels, plus its
/// gradient w.r.t. the emissions.
double SequenceCrossEntropy(const std::vector<std::vector<double>>& logits,
                            const std::vector<int>& labels,
                            std::vector<std::vector<double>>* dlogits) {
  double loss = 0.0;
  if (dlogits != nullptr) dlogits->assign(logits.size(), {});
  for (size_t t = 0; t < logits.size(); ++t) {
    std::vector<double> probs = logits[t];
    SoftmaxInPlace(&probs);
    loss -= std::log(std::max(1e-12, probs[labels[t]]));
    if (dlogits != nullptr) {
      probs[labels[t]] -= 1.0;
      (*dlogits)[t] = std::move(probs);
    }
  }
  return loss;
}

TEST(CrfGradientTest, EmissionGradientMatchesFiniteDifference) {
  Rng rng(101);
  const int steps = 5;
  std::vector<std::vector<double>> emissions(steps, std::vector<double>(2));
  std::vector<int> labels(steps);
  for (int t = 0; t < steps; ++t) {
    emissions[t][0] = rng.NextGaussian(0, 1);
    emissions[t][1] = rng.NextGaussian(0, 1);
    labels[t] = static_cast<int>(rng.NextBounded(2));
  }

  LinearChainCrf crf_grad;
  std::vector<std::vector<double>> analytic;
  crf_grad.NegLogLikelihood(emissions, labels, &analytic);

  const double eps = 1e-5;
  for (int t = 0; t < steps; ++t) {
    for (int k = 0; k < 2; ++k) {
      auto plus = emissions;
      auto minus = emissions;
      plus[t][k] += eps;
      minus[t][k] -= eps;
      // Fresh CRFs so accumulated transition gradients don't interfere.
      LinearChainCrf a;
      LinearChainCrf b;
      const double numeric =
          (a.NegLogLikelihood(plus, labels, nullptr) -
           b.NegLogLikelihood(minus, labels, nullptr)) /
          (2 * eps);
      EXPECT_NEAR(analytic[t][k], numeric, 1e-6)
          << "emission gradient (" << t << "," << k << ")";
    }
  }
}

TEST(CrfGradientTest, TransitionGradientDirectionDecreasesLoss) {
  // One SGD step on the accumulated transition gradient must reduce the
  // NLL of the training sequence (descent property on a convex objective).
  Rng rng(103);
  const int steps = 8;
  std::vector<std::vector<double>> emissions(steps, std::vector<double>(2));
  std::vector<int> labels(steps);
  for (int t = 0; t < steps; ++t) {
    emissions[t][0] = rng.NextGaussian(0, 0.5);
    emissions[t][1] = rng.NextGaussian(0, 0.5);
    labels[t] = t < steps / 2 ? 0 : 1;  // sticky labels
  }
  LinearChainCrf crf;
  const double before = crf.NegLogLikelihood(emissions, labels, nullptr);
  crf.ApplyGradients(0.05, 10.0);
  LinearChainCrf probe = crf;  // copy with updated transitions
  const double after = probe.NegLogLikelihood(emissions, labels, nullptr);
  EXPECT_LT(after, before);
}

TEST(LstmGradientTest, LossDecreasesMonotonicallyOnOneSample) {
  // Descent check over repeated full-batch steps on one sequence: if BPTT
  // gradients are correct, per-step softmax CE must fall essentially
  // monotonically at a small learning rate.
  Rng rng(107);
  std::vector<std::vector<double>> xs;
  std::vector<int> labels;
  MakeSequence(&rng, 6, 3, &xs, &labels);

  LstmConfig config;
  config.hidden_size = 8;
  config.seed = 5;
  LstmTagger lstm;
  lstm.Initialize(3, config);
  LstmTagger::Gradients grads;
  grads.Initialize(3, 8);

  double prev = 1e30;
  int increases = 0;
  for (int iter = 0; iter < 60; ++iter) {
    LstmTagger::Trace trace;
    lstm.Forward(xs, &trace);
    std::vector<std::vector<double>> dlogits;
    const double loss = SequenceCrossEntropy(trace.logits, labels, &dlogits);
    if (loss > prev + 1e-9) ++increases;
    prev = loss;
    lstm.Backward(trace, dlogits, &grads);
    lstm.ApplyGradients(&grads, 0.05, 100.0);
  }
  EXPECT_LE(increases, 2);  // tiny non-monotonicity tolerated
  // And it must have actually learned something.
  LstmTagger::Trace final_trace;
  lstm.Forward(xs, &final_trace);
  EXPECT_LT(SequenceCrossEntropy(final_trace.logits, labels, nullptr),
            0.6 * 6);
}

TEST(LstmGradientTest, BpttMatchesFiniteDifferencePerWeight) {
  // The gold-standard check: for a sample of individual weights in every
  // parameter matrix, the BPTT gradient must equal the central finite
  // difference of the sequence loss.
  Rng rng(109);
  std::vector<std::vector<double>> xs;
  std::vector<int> labels;
  MakeSequence(&rng, 5, 4, &xs, &labels);

  LstmConfig config;
  config.hidden_size = 6;
  config.seed = 9;
  LstmTagger lstm;
  lstm.Initialize(4, config);

  LstmTagger::Gradients grads;
  grads.Initialize(4, 6);
  {
    LstmTagger::Trace trace;
    lstm.Forward(xs, &trace);
    std::vector<std::vector<double>> dlogits;
    SequenceCrossEntropy(trace.logits, labels, &dlogits);
    lstm.Backward(trace, dlogits, &grads);
  }

  auto loss_now = [&]() {
    LstmTagger::Trace trace;
    lstm.Forward(xs, &trace);
    return SequenceCrossEntropy(trace.logits, labels, nullptr);
  };
  const double eps = 1e-5;
  auto check_matrix = [&](Matrix& param, const Matrix& grad,
                          const char* name) {
    Rng pick(7);
    for (int sample = 0; sample < 6; ++sample) {
      const size_t r = pick.NextBounded(param.rows());
      const size_t c = pick.NextBounded(param.cols());
      const double saved = param.at(r, c);
      param.at(r, c) = saved + eps;
      const double plus = loss_now();
      param.at(r, c) = saved - eps;
      const double minus = loss_now();
      param.at(r, c) = saved;
      const double numeric = (plus - minus) / (2 * eps);
      EXPECT_NEAR(grad.at(r, c), numeric, 1e-5)
          << name << "(" << r << "," << c << ")";
    }
  };
  check_matrix(lstm.w_i(), grads.w_i, "w_i");
  check_matrix(lstm.w_f(), grads.w_f, "w_f");
  check_matrix(lstm.w_o(), grads.w_o, "w_o");
  check_matrix(lstm.w_g(), grads.w_g, "w_g");
  check_matrix(lstm.w_y(), grads.w_y, "w_y");
  // Spot-check bias gradients too.
  for (size_t k : {size_t{0}, size_t{3}}) {
    const double saved = lstm.b_i()[k];
    lstm.b_i()[k] = saved + eps;
    const double plus = loss_now();
    lstm.b_i()[k] = saved - eps;
    const double minus = loss_now();
    lstm.b_i()[k] = saved;
    EXPECT_NEAR(grads.b_i[k], (plus - minus) / (2 * eps), 1e-5) << "b_i " << k;
  }
  for (size_t k : {size_t{0}, size_t{1}}) {
    const double saved = lstm.b_y()[k];
    lstm.b_y()[k] = saved + eps;
    const double plus = loss_now();
    lstm.b_y()[k] = saved - eps;
    const double minus = loss_now();
    lstm.b_y()[k] = saved;
    EXPECT_NEAR(grads.b_y[k], (plus - minus) / (2 * eps), 1e-5) << "b_y " << k;
  }
}

TEST(LstmCrfGradientTest, JointTrainingReducesCrfNll) {
  // End-to-end descent through both layers: CRF NLL over LSTM emissions
  // must fall under joint updates on a fixed sample.
  Rng rng(113);
  std::vector<std::vector<double>> xs;
  std::vector<int> labels;
  MakeSequence(&rng, 7, 3, &xs, &labels);

  LstmConfig config;
  config.hidden_size = 8;
  config.seed = 3;
  LstmTagger lstm;
  lstm.Initialize(3, config);
  LstmTagger::Gradients grads;
  grads.Initialize(3, 8);
  LinearChainCrf crf;

  double first = 0.0;
  double last = 0.0;
  for (int iter = 0; iter < 40; ++iter) {
    LstmTagger::Trace trace;
    lstm.Forward(xs, &trace);
    std::vector<std::vector<double>> demissions;
    const double nll = crf.NegLogLikelihood(trace.logits, labels, &demissions);
    if (iter == 0) first = nll;
    last = nll;
    lstm.Backward(trace, demissions, &grads);
    lstm.ApplyGradients(&grads, 0.05, 100.0);
    crf.ApplyGradients(0.05, 100.0);
  }
  EXPECT_LT(last, first * 0.3);
}

}  // namespace
}  // namespace maxson::ml
