#include <filesystem>
#include <optional>
#include <set>
#include <string>

#include "catalog/catalog.h"
#include "core/cache_registry.h"
#include "core/cacher.h"
#include "core/collector.h"
#include "core/lru_cache.h"
#include "core/maxson.h"
#include "core/maxson_parser.h"
#include "core/predictor.h"
#include "core/scoring.h"
#include "gtest/gtest.h"
#include "storage/file_system.h"
#include "workload/data_generator.h"
#include "workload/trace_generator.h"

namespace maxson::core {
namespace {

using storage::FileSystem;
using workload::JsonPathLocation;

JsonPathLocation Loc(const std::string& table, const std::string& path) {
  JsonPathLocation loc;
  loc.database = "mydb";
  loc.table = table;
  loc.column = "payload";
  loc.path = path;
  return loc;
}

TEST(CacheRegistryTest, PutFindInvalidateClear) {
  CacheRegistry registry;
  CacheEntry entry;
  entry.location = Loc("t", "$.a");
  entry.cache_table_dir = "/tmp/cache/mydb.t";
  entry.cache_field = "payload___a";
  entry.cache_time = 5;
  registry.Put(entry);

  const std::optional<CacheEntry> found = registry.Lookup(Loc("t", "$.a"));
  ASSERT_TRUE(found.has_value());
  EXPECT_TRUE(found->valid);
  EXPECT_FALSE(registry.Lookup(Loc("t", "$.b")).has_value());

  registry.Invalidate(Loc("t", "$.a"));
  EXPECT_FALSE(registry.Lookup(Loc("t", "$.a"))->valid);

  const std::vector<std::string> dirs = registry.Clear();
  ASSERT_EQ(dirs.size(), 1u);
  EXPECT_EQ(dirs[0], "/tmp/cache/mydb.t");
  EXPECT_EQ(registry.size(), 0u);
}

TEST(CacheRegistryTest, JsonRoundTripPreservesEntries) {
  CacheRegistry registry;
  CacheEntry entry;
  entry.location = Loc("t", "$.a.b");
  entry.cache_table_dir = "/cache/mydb.t";
  entry.cache_field = "payload___a_b";
  entry.cache_time = 12;
  registry.Put(entry);
  CacheEntry stale = entry;
  stale.location = Loc("t", "$.c");
  stale.valid = false;
  registry.Put(stale);

  auto restored = CacheRegistry::FromJson(registry.ToJson());
  ASSERT_TRUE(restored.ok()) << restored.status();
  EXPECT_EQ(restored->size(), 2u);
  const std::optional<CacheEntry> a = restored->Lookup(Loc("t", "$.a.b"));
  ASSERT_TRUE(a.has_value());
  EXPECT_TRUE(a->valid);
  EXPECT_EQ(a->cache_time, 12);
  EXPECT_EQ(a->cache_table_dir, "/cache/mydb.t");
  const std::optional<CacheEntry> c = restored->Lookup(Loc("t", "$.c"));
  ASSERT_TRUE(c.has_value());
  EXPECT_FALSE(c->valid);
}

TEST(CacheRegistryTest, SaveLoadAndRejectGarbage) {
  const std::string path =
      (std::filesystem::temp_directory_path() /
       ("maxson_registry_" + std::to_string(::getpid()) + ".json"))
          .string();
  CacheRegistry registry;
  CacheEntry entry;
  entry.location = Loc("t", "$.x");
  entry.cache_table_dir = "/cache/mydb.t";
  entry.cache_field = "payload___x";
  registry.Put(entry);
  ASSERT_TRUE(registry.Save(path).ok());
  auto loaded = CacheRegistry::Load(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_TRUE(loaded->Lookup(Loc("t", "$.x")).has_value());
  std::filesystem::remove(path);

  EXPECT_FALSE(CacheRegistry::FromJson("not json").ok());
  EXPECT_FALSE(CacheRegistry::FromJson("{}").ok());
  EXPECT_FALSE(CacheRegistry::Load("/nonexistent/registry.json").ok());
}

TEST(CacheRegistryTest, FieldAndDirNaming) {
  EXPECT_EQ(CacheFieldName("payload", "$.a.b[2]"), "payload____a_b_2_");
  EXPECT_EQ(CacheTableDir("/cache", "db", "t"), "/cache/db.t");
  // Distinct paths must map to distinct fields for the paths we use.
  EXPECT_NE(CacheFieldName("payload", "$.f1"), CacheFieldName("payload", "$.f2"));
}

TEST(CollectorTest, CountsAndMpjps) {
  JsonPathCollector collector;
  workload::QueryRecord q1;
  q1.date = 3;
  q1.paths = {Loc("t", "$.a"), Loc("t", "$.b")};
  workload::QueryRecord q2;
  q2.date = 3;
  q2.paths = {Loc("t", "$.a")};
  collector.Record(q1);
  collector.Record(q2);

  EXPECT_EQ(collector.CountOn(Loc("t", "$.a").Key(), 3), 2);
  EXPECT_EQ(collector.CountOn(Loc("t", "$.b").Key(), 3), 1);
  EXPECT_EQ(collector.CountOn(Loc("t", "$.a").Key(), 4), 0);
  EXPECT_EQ(collector.CountsBetween(Loc("t", "$.a").Key(), 1, 4),
            (std::vector<int>{0, 0, 2}));

  const auto mpjps = collector.PathsWithCountAtLeast(3, 2);
  ASSERT_EQ(mpjps.size(), 1u);
  EXPECT_EQ(mpjps[0], Loc("t", "$.a").Key());
  EXPECT_EQ(collector.QueriesOn(3).size(), 2u);
  EXPECT_EQ(collector.max_date(), 3);
  ASSERT_NE(collector.Location(Loc("t", "$.b").Key()), nullptr);
  EXPECT_EQ(collector.Location(Loc("t", "$.b").Key())->path, "$.b");
}

TEST(CollectorTest, JsonRoundTripPreservesStatistics) {
  JsonPathCollector collector;
  workload::QueryRecord q1;
  q1.date = 2;
  q1.paths = {Loc("t", "$.a"), Loc("t", "$.b")};
  workload::QueryRecord q2;
  q2.date = 5;
  q2.paths = {Loc("t", "$.a")};
  collector.Record(q1);
  collector.Record(q2);

  auto restored = JsonPathCollector::FromJson(collector.ToJson());
  ASSERT_TRUE(restored.ok()) << restored.status();
  EXPECT_EQ(restored->CountOn(Loc("t", "$.a").Key(), 2), 1);
  EXPECT_EQ(restored->CountOn(Loc("t", "$.a").Key(), 5), 1);
  EXPECT_EQ(restored->CountOn(Loc("t", "$.b").Key(), 2), 1);
  EXPECT_EQ(restored->max_date(), 5);
  EXPECT_EQ(restored->QueriesOn(2).size(), 1u);
  EXPECT_EQ(restored->QueriesOn(2)[0].size(), 2u);
  ASSERT_NE(restored->Location(Loc("t", "$.b").Key()), nullptr);
  EXPECT_EQ(restored->Location(Loc("t", "$.b").Key())->path, "$.b");

  EXPECT_FALSE(JsonPathCollector::FromJson("[]").ok());
  EXPECT_FALSE(JsonPathCollector::FromJson("{}").ok());
}

TEST(CollectorTest, SaveLoadFile) {
  const std::string path =
      (std::filesystem::temp_directory_path() /
       ("maxson_collector_" + std::to_string(::getpid()) + ".json"))
          .string();
  JsonPathCollector collector;
  workload::QueryRecord q;
  q.date = 1;
  q.paths = {Loc("t", "$.x")};
  collector.Record(q);
  ASSERT_TRUE(collector.Save(path).ok());
  auto loaded = JsonPathCollector::Load(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->CountOn(Loc("t", "$.x").Key(), 1), 1);
  std::filesystem::remove(path);
}

TEST(ScoringTest, EquationsMatchPaperDefinitions) {
  // Two candidates; three queries. Candidate a: parse 2s, 1 byte; in q1
  // (paths {a,b}, both MPJP) and q2 (paths {a,x}, one MPJP).
  MpjpCandidate a;
  a.location = Loc("t", "$.a");
  a.avg_parse_seconds = 2.0;
  a.avg_value_bytes = 1.0;
  a.estimated_cache_bytes = 10;
  MpjpCandidate b;
  b.location = Loc("t", "$.b");
  b.avg_parse_seconds = 1.0;
  b.avg_value_bytes = 4.0;
  b.estimated_cache_bytes = 10;

  const std::string ka = a.location.Key();
  const std::string kb = b.location.Key();
  const std::string kx = Loc("t", "$.x").Key();
  std::vector<std::vector<std::string>> queries = {
      {ka, kb}, {ka, kx}, {kb, kb, kx, kx}};
  std::set<std::string> mpjps = {ka, kb};

  const auto scored = ScoreMpjps({a, b}, queries, mpjps);
  ASSERT_EQ(scored.size(), 2u);
  // Candidate a: A = 2/1 = 2; queries containing a: q1 (M=2,N=2), q2
  // (M=1,N=2) -> R = 3/4; O = 2 -> score = 2 * 0.75 * 2 = 3.
  const ScoredMpjp& sa =
      scored[0].candidate.location.Key() == ka ? scored[0] : scored[1];
  EXPECT_DOUBLE_EQ(sa.acceleration_per_byte, 2.0);
  EXPECT_DOUBLE_EQ(sa.relevance, 0.75);
  EXPECT_EQ(sa.occurrences, 2u);
  EXPECT_DOUBLE_EQ(sa.score, 3.0);
  // Candidate b: A = 0.25; queries with b: q1 (2/2), q3 (2/4) -> R = 4/6;
  // O = 2 -> score = 0.25 * (4/6) * 2 = 1/3.
  const ScoredMpjp& sb =
      scored[0].candidate.location.Key() == kb ? scored[0] : scored[1];
  EXPECT_DOUBLE_EQ(sb.acceleration_per_byte, 0.25);
  EXPECT_NEAR(sb.relevance, 4.0 / 6.0, 1e-12);
  EXPECT_NEAR(sb.score, 1.0 / 3.0, 1e-12);
  // Sorted descending: a first.
  EXPECT_EQ(scored[0].candidate.location.Key(), ka);
}

TEST(ScoringTest, BudgetedSelectionRespectsBudget) {
  std::vector<ScoredMpjp> scored;
  for (int i = 0; i < 5; ++i) {
    ScoredMpjp s;
    s.candidate.location = Loc("t", "$.f" + std::to_string(i));
    s.candidate.estimated_cache_bytes = 100;
    s.score = 10 - i;
    scored.push_back(s);
  }
  const auto selected = SelectWithinBudget(scored, 250);
  ASSERT_EQ(selected.size(), 2u);  // two fit in 250 bytes
  EXPECT_EQ(selected[0].candidate.location.path, "$.f0");
  EXPECT_EQ(selected[1].candidate.location.path, "$.f1");

  const auto all = SelectWithinBudget(scored, 10000);
  EXPECT_EQ(all.size(), 5u);
  const auto none = SelectWithinBudget(scored, 50);
  EXPECT_TRUE(none.empty());

  const auto random = SelectRandomWithinBudget(scored, 250, 3);
  EXPECT_LE(random.size(), 2u);
}

TEST(ScoringTest, SmallerLaterCandidatesBackfillBudget) {
  std::vector<ScoredMpjp> scored(3);
  scored[0].candidate.location = Loc("t", "$.big");
  scored[0].candidate.estimated_cache_bytes = 90;
  scored[0].score = 3;
  scored[1].candidate.location = Loc("t", "$.huge");
  scored[1].candidate.estimated_cache_bytes = 50;
  scored[1].score = 2;
  scored[2].candidate.location = Loc("t", "$.small");
  scored[2].candidate.estimated_cache_bytes = 10;
  scored[2].score = 1;
  const auto selected = SelectWithinBudget(scored, 100);
  // big (90) fits; huge (50) does not; small (10) backfills.
  ASSERT_EQ(selected.size(), 2u);
  EXPECT_EQ(selected[0].candidate.location.path, "$.big");
  EXPECT_EQ(selected[1].candidate.location.path, "$.small");
}

TEST(LruCacheTest, HitMissPromotionEviction) {
  LruValueCache cache(100);
  EXPECT_FALSE(cache.Get("a"));
  cache.Put("a", 40);
  cache.Put("b", 40);
  EXPECT_TRUE(cache.Get("a"));  // promotes a
  cache.Put("c", 40);           // evicts b (LRU)
  EXPECT_TRUE(cache.Get("a"));
  EXPECT_FALSE(cache.Get("b"));
  EXPECT_TRUE(cache.Get("c"));
  EXPECT_EQ(cache.evictions(), 1u);
  EXPECT_EQ(cache.used_bytes(), 80u);
}

TEST(LruCacheTest, OversizedEntriesNotAdmitted) {
  LruValueCache cache(10);
  cache.Put("big", 100);
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_FALSE(cache.Get("big"));
}

TEST(LruCacheTest, UpdateExistingEntryAdjustsBytes) {
  LruValueCache cache(100);
  cache.Put("a", 30);
  cache.Put("a", 60);
  EXPECT_EQ(cache.used_bytes(), 60u);
  EXPECT_EQ(cache.size(), 1u);
  cache.Clear();
  EXPECT_EQ(cache.used_bytes(), 0u);
  EXPECT_FALSE(cache.Get("a"));
}

TEST(LruCacheTest, HitRatioAccounting) {
  LruValueCache cache(100);
  cache.Put("a", 10);
  cache.Get("a");
  cache.Get("a");
  cache.Get("z");
  EXPECT_NEAR(cache.HitRatio(), 2.0 / 3.0, 1e-12);
}

// ---------- End-to-end Maxson fixture ----------

class MaxsonEndToEndTest : public ::testing::Test {
 protected:
  void SetUp() override {
    root_ = (std::filesystem::temp_directory_path() /
             ("maxson_core_test_" + std::to_string(::getpid())))
                .string();
    ASSERT_TRUE(FileSystem::RemoveAll(root_).ok());
    // Table mydb.sales with JSON payloads.
    workload::JsonTableSpec spec;
    spec.database = "mydb";
    spec.table = "sales";
    spec.num_properties = 12;
    spec.avg_json_bytes = 400;
    spec.rows = 3000;
    spec.rows_per_file = 1000;
    spec.rows_per_group = 200;
    auto table = workload::GenerateJsonTable(spec, root_ + "/warehouse", 3,
                                             &catalog_);
    ASSERT_TRUE(table.ok()) << table.status();
  }

  void TearDown() override { ASSERT_TRUE(FileSystem::RemoveAll(root_).ok()); }

  MaxsonConfig Config() {
    MaxsonConfig config;
    config.cache_root = root_ + "/cache";
    config.cache_budget_bytes = 64ull << 20;
    config.engine.default_database = "mydb";
    return config;
  }

  /// Feeds the collector a history in which $.f1, $.f2 are parsed daily by
  /// several queries (clear MPJPs) and $.f9 appears once a week.
  void FeedHistory(MaxsonSession* session, int days) {
    for (int day = 0; day < days; ++day) {
      for (int rep = 0; rep < 3; ++rep) {
        workload::QueryRecord q;
        q.date = day;
        q.recurrence = workload::Recurrence::kDaily;
        q.paths = {Loc("sales", "$.f1"), Loc("sales", "$.f2")};
        session->RecordQuery(q);
      }
      if (day % 7 == 0) {
        workload::QueryRecord q;
        q.date = day;
        q.recurrence = workload::Recurrence::kWeekly;
        q.paths = {Loc("sales", "$.f9")};
        session->RecordQuery(q);
      }
    }
  }

  std::string root_;
  catalog::Catalog catalog_;
};

TEST_F(MaxsonEndToEndTest, SampleTableStatsMeasuresSizesAndTimes) {
  auto table = catalog_.GetTable("mydb", "sales");
  ASSERT_TRUE(table.ok());
  auto stats = SampleTableStats(**table, "payload", "$.f1", 100,
                                engine::JsonBackend::kDom);
  ASSERT_TRUE(stats.ok()) << stats.status();
  EXPECT_EQ(stats->table_rows, 3000u);
  EXPECT_GT(stats->avg_value_bytes, 1.0);   // "catN" strings
  EXPECT_LT(stats->avg_value_bytes, 10.0);
  EXPECT_GT(stats->avg_parse_seconds, 0.0);
}

TEST_F(MaxsonEndToEndTest, CacherWritesAlignedCacheTables) {
  CacheRegistry registry;
  JsonPathCacher cacher(&catalog_, root_ + "/cache");
  std::vector<ScoredMpjp> selected(2);
  selected[0].candidate.location = Loc("sales", "$.f1");
  selected[1].candidate.location = Loc("sales", "$.f2");
  auto stats = cacher.RepopulateCache(selected, 1, &registry);
  ASSERT_TRUE(stats.ok()) << stats.status();
  EXPECT_EQ(stats->paths_cached, 2u);
  EXPECT_EQ(stats->rows_parsed, 3000u);
  EXPECT_EQ(registry.size(), 2u);

  // One cache file per raw part file, with matching row counts.
  const std::string cache_dir = CacheTableDir(root_ + "/cache", "mydb", "sales");
  auto splits = FileSystem::ListSplits(cache_dir);
  ASSERT_TRUE(splits.ok());
  EXPECT_EQ(splits->size(), 3u);  // 3000 rows / 1000 per file
  storage::CorcReader reader((*splits)[0].path);
  ASSERT_TRUE(reader.Open().ok());
  EXPECT_EQ(reader.num_rows(), 1000u);
  EXPECT_EQ(reader.footer().rows_per_group, 200u);
  EXPECT_EQ(reader.schema().num_fields(), 2u);
}

TEST_F(MaxsonEndToEndTest, CachedQueryMatchesUncachedResults) {
  MaxsonSession session(&catalog_, Config());
  FeedHistory(&session, 14);
  ASSERT_TRUE(session.TrainPredictor(8, 13).ok());
  auto report = session.RunMidnightCycle(14);
  ASSERT_TRUE(report.ok()) << report.status();
  ASSERT_GT(report->selected.size(), 0u);

  const std::string sql =
      "SELECT id, get_json_object(payload, '$.f1') AS f1, "
      "get_json_object(payload, '$.f2') AS f2 FROM mydb.sales "
      "WHERE date = 20190101";
  auto cached = session.Execute(sql);
  ASSERT_TRUE(cached.ok()) << cached.status();
  auto uncached = session.ExecuteWithoutCache(sql);
  ASSERT_TRUE(uncached.ok()) << uncached.status();

  ASSERT_EQ(cached->batch.num_rows(), uncached->batch.num_rows());
  ASSERT_GT(cached->batch.num_rows(), 0u);
  for (size_t r = 0; r < cached->batch.num_rows(); ++r) {
    for (size_t c = 0; c < 3; ++c) {
      EXPECT_EQ(cached->batch.column(c).GetValue(r).ToString(),
                uncached->batch.column(c).GetValue(r).ToString())
          << "row " << r << " col " << c;
    }
  }
  // The cached run must not have parsed JSON for f1/f2.
  EXPECT_LT(cached->metrics.parse.records_parsed,
            uncached->metrics.parse.records_parsed);
  EXPECT_EQ(cached->metrics.parse.records_parsed, 0u);
  EXPECT_GT(cached->metrics.cache_columns_read, 0u);
}

TEST_F(MaxsonEndToEndTest, PredicatePushdownSharesSkipsAcrossReaders) {
  MaxsonSession session(&catalog_, Config());
  FeedHistory(&session, 14);
  ASSERT_TRUE(session.TrainPredictor(8, 13).ok());
  ASSERT_TRUE(session.RunMidnightCycle(14).ok());

  // f1 = "cat3" matches 10% of rows; the cache-field SARG should exclude
  // row groups... but "catN" cycles every 10 rows so every group contains
  // every category. Use a range predicate on f1 rendered strings instead:
  // categories are cat0..cat9; pick one that sorts above most ("cat9").
  const std::string sql =
      "SELECT get_json_object(payload, '$.f1') AS f1 FROM mydb.sales "
      "WHERE get_json_object(payload, '$.f1') > 'cat8'";
  auto result = session.Execute(sql);
  ASSERT_TRUE(result.ok()) << result.status();
  // Correctness: exactly the cat9 rows.
  EXPECT_EQ(result->batch.num_rows(), 300u);
  // The rewritten plan must carry a cache SARG (pushdown happened), even if
  // min/max can't skip groups on this data distribution.
  auto plan = session.Plan(sql);
  ASSERT_TRUE(plan.ok());
  EXPECT_FALSE(plan->scan.cache_sarg.empty());
  EXPECT_EQ(plan->scan.cache_columns.size(), 1u);
}

TEST_F(MaxsonEndToEndTest, ModificationInvalidatesCache) {
  MaxsonSession session(&catalog_, Config());
  FeedHistory(&session, 14);
  ASSERT_TRUE(session.TrainPredictor(8, 13).ok());
  ASSERT_TRUE(session.RunMidnightCycle(14).ok());

  const std::string sql =
      "SELECT get_json_object(payload, '$.f1') FROM mydb.sales LIMIT 5";
  auto before = session.Execute(sql);
  ASSERT_TRUE(before.ok());
  EXPECT_EQ(before->metrics.parse.records_parsed, 0u);  // cache hit

  // Touch the table with a timestamp after the cache time (day 14).
  ASSERT_TRUE(catalog_.TouchTable("mydb", "sales", 20).ok());
  auto after = session.Execute(sql);
  ASSERT_TRUE(after.ok());
  // Cache invalid: the engine must parse raw JSON again.
  EXPECT_GT(after->metrics.parse.records_parsed, 0u);
  EXPECT_GT(session.parser().invalidations(), 0u);
  // The entry stays invalid for later queries too.
  auto again = session.Execute(sql);
  ASSERT_TRUE(again.ok());
  EXPECT_GT(again->metrics.parse.records_parsed, 0u);
}

TEST_F(MaxsonEndToEndTest, PredictorFindsDailyMpjps) {
  MaxsonSession session(&catalog_, Config());
  FeedHistory(&session, 21);
  ASSERT_TRUE(session.TrainPredictor(8, 20).ok());
  const auto predicted = session.PredictMpjps(21);
  const std::set<std::string> set(predicted.begin(), predicted.end());
  // Daily paths parsed 3x/day are trivially MPJPs.
  EXPECT_TRUE(set.count(Loc("sales", "$.f1").Key()) != 0);
  EXPECT_TRUE(set.count(Loc("sales", "$.f2").Key()) != 0);
  // The weekly path (parsed once on its day) never hits count >= 2.
  EXPECT_TRUE(set.count(Loc("sales", "$.f9").Key()) == 0);
}

TEST_F(MaxsonEndToEndTest, MidnightCycleIsRepeatable) {
  MaxsonSession session(&catalog_, Config());
  FeedHistory(&session, 14);
  ASSERT_TRUE(session.TrainPredictor(8, 13).ok());
  ASSERT_TRUE(session.RunMidnightCycle(14).ok());
  const size_t first_size = session.registry().size();
  // Re-populating (next midnight) must not leak stale entries or files.
  ASSERT_TRUE(session.RunMidnightCycle(15).ok());
  EXPECT_EQ(session.registry().size(), first_size);
  auto result = session.Execute(
      "SELECT get_json_object(payload, '$.f1') FROM mydb.sales LIMIT 3");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->metrics.parse.records_parsed, 0u);
}

TEST_F(MaxsonEndToEndTest, BudgetZeroCachesNothing) {
  MaxsonConfig config = Config();
  config.cache_budget_bytes = 0;
  MaxsonSession session(&catalog_, config);
  FeedHistory(&session, 14);
  ASSERT_TRUE(session.TrainPredictor(8, 13).ok());
  auto report = session.RunMidnightCycle(14);
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->selected.empty());
  auto result = session.Execute(
      "SELECT get_json_object(payload, '$.f1') FROM mydb.sales LIMIT 3");
  ASSERT_TRUE(result.ok());
  EXPECT_GT(result->metrics.parse.records_parsed, 0u);  // no cache
}

TEST_F(MaxsonEndToEndTest, MaxsonParserCountsHitsAndMisses) {
  MaxsonSession session(&catalog_, Config());
  FeedHistory(&session, 14);
  ASSERT_TRUE(session.TrainPredictor(8, 13).ok());
  ASSERT_TRUE(session.RunMidnightCycle(14).ok());
  // f1 cached; f7 never cached.
  auto result = session.Execute(
      "SELECT get_json_object(payload, '$.f1'), "
      "get_json_object(payload, '$.f7') FROM mydb.sales LIMIT 3");
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_GE(session.parser().cache_hits(), 1u);
  EXPECT_GE(session.parser().cache_misses(), 1u);
}

}  // namespace
}  // namespace maxson::core
