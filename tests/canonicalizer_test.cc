#include "serve/canonicalizer.h"

#include <filesystem>
#include <string>
#include <vector>

#include "catalog/catalog.h"
#include "engine/engine.h"
#include "engine/fingerprint.h"
#include "gtest/gtest.h"
#include "storage/corc_writer.h"
#include "storage/file_system.h"

namespace maxson::serve {
namespace {

using storage::FileSystem;
using storage::Schema;
using storage::TypeKind;
using storage::Value;

TEST(CanonicalizerTest, NormalizesWhitespaceAndKeywordCase) {
  auto c = Canonicalize("select   id\n from DB.t  where id=1");
  ASSERT_TRUE(c.ok()) << c.status();
  EXPECT_EQ(c->sql, "SELECT id FROM DB.t WHERE (id = 1)");
  EXPECT_EQ(c->cache_key, c->sql);
}

TEST(CanonicalizerTest, SortsCommutativeConjuncts) {
  auto a = Canonicalize("SELECT id FROM db.t WHERE b = 2 AND a = 1");
  auto b = Canonicalize("SELECT id FROM db.t WHERE a = 1 AND b = 2");
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a->sql, b->sql);
  EXPECT_EQ(a->cache_key, b->cache_key);

  auto c = Canonicalize("SELECT id FROM db.t WHERE a = 1 OR b = 2");
  auto d = Canonicalize("SELECT id FROM db.t WHERE b = 2 OR a = 1");
  ASSERT_TRUE(c.ok() && d.ok());
  EXPECT_EQ(c->sql, d->sql);
  // AND and OR chains must not collapse into each other.
  EXPECT_NE(a->sql, c->sql);
}

TEST(CanonicalizerTest, OrientsComparisonsLiteralOnRight) {
  auto flipped = Canonicalize("SELECT id FROM db.t WHERE 5 < id");
  auto straight = Canonicalize("SELECT id FROM db.t WHERE id > 5");
  ASSERT_TRUE(flipped.ok() && straight.ok());
  EXPECT_EQ(flipped->sql, straight->sql);
  EXPECT_EQ(flipped->sql, "SELECT id FROM db.t WHERE (id > 5)");
}

TEST(CanonicalizerTest, SortsAndDeduplicatesInLists) {
  auto a = Canonicalize("SELECT id FROM db.t WHERE id IN (3, 1, 2, 1)");
  auto b = Canonicalize("SELECT id FROM db.t WHERE id IN (1, 2, 3)");
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a->sql, b->sql);
  EXPECT_EQ(a->sql, "SELECT id FROM db.t WHERE (id IN (1, 2, 3))");
}

TEST(CanonicalizerTest, FoldsPureLiteralSubtrees) {
  auto c = Canonicalize("SELECT id FROM db.t WHERE id > 10 * 2 + 5");
  ASSERT_TRUE(c.ok()) << c.status();
  EXPECT_EQ(c->sql, "SELECT id FROM db.t WHERE (id > 25)");

  // Folding runs the engine's own semantics: division by zero is NULL.
  auto null_fold = Canonicalize("SELECT id FROM db.t WHERE id > 1 / 0");
  ASSERT_TRUE(null_fold.ok());
  EXPECT_EQ(null_fold->sql, "SELECT id FROM db.t WHERE (id > NULL)");
}

TEST(CanonicalizerTest, ProjectionOrderInsensitiveKeyButOrderPreservingSql) {
  auto ab = Canonicalize("SELECT a, b FROM db.t");
  auto ba = Canonicalize("SELECT b, a FROM db.t");
  ASSERT_TRUE(ab.ok() && ba.ok());
  EXPECT_EQ(ab->cache_key, ba->cache_key);
  EXPECT_NE(ab->sql, ba->sql);  // output column order is semantic
  ASSERT_EQ(ab->projections.size(), 2u);
  EXPECT_EQ(ab->projections[0], "a");
  EXPECT_EQ(ba->projections[0], "b");
}

TEST(CanonicalizerTest, TracksInvolvedTables) {
  auto c = Canonicalize(
      "SELECT x.id FROM db.t x INNER JOIN db2.u y ON x.id = y.id");
  ASSERT_TRUE(c.ok()) << c.status();
  ASSERT_EQ(c->tables.size(), 2u);
  EXPECT_EQ(c->tables[0], (std::pair<std::string, std::string>("db", "t")));
  EXPECT_EQ(c->tables[1], (std::pair<std::string, std::string>("db2", "u")));
}

TEST(CanonicalizerTest, RejectsNonSelectAndInvalidSql) {
  EXPECT_FALSE(Canonicalize("EXPLAIN SELECT id FROM db.t").ok());
  EXPECT_FALSE(Canonicalize("SELECT FROM WHERE").ok());
  EXPECT_FALSE(Canonicalize("").ok());
}

TEST(CanonicalizerTest, EscapesQuotesInStringLiterals) {
  auto c = Canonicalize("SELECT id FROM db.t WHERE name = 'o''brien'");
  ASSERT_TRUE(c.ok()) << c.status();
  EXPECT_EQ(c->sql, "SELECT id FROM db.t WHERE (name = 'o''brien')");
}

/// The corpus the differential test executes: every executable query shape
/// from tests/sql_features_test.cc plus extra coverage of the rewrites the
/// canonicalizer performs (folding, BETWEEN desugaring, NOT, arithmetic,
/// DISTINCT, aliases, HAVING, LIMIT).
std::vector<std::string> DifferentialCorpus() {
  std::vector<std::string> corpus = {
      "SELECT DISTINCT name FROM db.t ORDER BY name",
      "SELECT DISTINCT name FROM db.t ORDER BY name LIMIT 2",
      "SELECT id FROM db.t WHERE name IN ('banana', 'cherry')",
      "SELECT id FROM db.t WHERE name NOT IN ('banana', 'cherry')",
      "SELECT id FROM db.t WHERE id IN (0, 4, 9)",
      "SELECT name, COUNT(*) AS n FROM db.t GROUP BY name "
      "HAVING COUNT(*) > 1 ORDER BY name",
      "SELECT name, COUNT(*) AS n FROM db.t GROUP BY name HAVING n = 1 "
      "ORDER BY name",
      "SELECT name, min(id) AS first_id FROM db.t GROUP BY name "
      "HAVING min(id) >= 1 AND name LIKE '%a%' ORDER BY name",
      // Extra shapes exercising each canonicalization rule.
      "SELECT id, name FROM db.t WHERE 1 <= id AND name LIKE 'a%' "
      "ORDER BY id DESC",
      "SELECT id FROM db.t WHERE id BETWEEN 1 AND 3 ORDER BY id",
      "SELECT id FROM db.t WHERE NOT (name = 'apple' OR id > 3) ORDER BY id",
      "SELECT id, name FROM db.t WHERE id % 2 = 0 ORDER BY id",
      "SELECT count(*) FROM db.t",
      "SELECT id + 1 AS next_id FROM db.t WHERE id > 10 * 0 ORDER BY id",
      "SELECT id + 1 FROM db.t ORDER BY id LIMIT 3",
      "select id from db.t where name like 'ap%' and id < 1 + 2",
      "SELECT name, id FROM db.t WHERE name IS NOT NULL ORDER BY id",
      "SELECT id FROM db.t WHERE 2 = id OR id = 0 ORDER BY id",
      "SELECT avg(id) AS mean, sum(id) AS total FROM db.t",
  };
  const char* like_patterns[] = {"apple", "ap%",     "%an%", "_pple",
                                 "%e",    "%",       "a_____t", "z%"};
  for (const char* pattern : like_patterns) {
    corpus.push_back(std::string("SELECT id FROM db.t WHERE name LIKE '") +
                     pattern + "'");
  }
  return corpus;
}

class CanonicalizerDifferentialTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = (std::filesystem::temp_directory_path() /
            ("maxson_canon_" + std::to_string(::getpid())))
               .string();
    ASSERT_TRUE(FileSystem::RemoveAll(dir_).ok());
    ASSERT_TRUE(FileSystem::MakeDirs(dir_ + "/t").ok());
    Schema schema;
    schema.AddField("id", TypeKind::kInt64);
    schema.AddField("name", TypeKind::kString);
    storage::CorcWriter writer(dir_ + "/t/" + FileSystem::PartFileName(0),
                               schema, {});
    ASSERT_TRUE(writer.Open().ok());
    const char* names[] = {"apple", "apricot", "banana", "apple", "cherry"};
    for (int i = 0; i < 5; ++i) {
      ASSERT_TRUE(
          writer.AppendRow({Value::Int64(i), Value::String(names[i])}).ok());
    }
    ASSERT_TRUE(writer.Close().ok());
    ASSERT_TRUE(catalog_.CreateDatabase("db").ok());
    catalog::TableInfo info;
    info.database = "db";
    info.name = "t";
    info.schema = schema;
    info.location = dir_ + "/t";
    ASSERT_TRUE(catalog_.CreateTable(info).ok());
  }
  void TearDown() override { ASSERT_TRUE(FileSystem::RemoveAll(dir_).ok()); }

  std::string dir_;
  catalog::Catalog catalog_;
};

TEST_F(CanonicalizerDifferentialTest, CanonicalFormIsByteIdentical) {
  engine::QueryEngine engine(&catalog_, engine::EngineConfig{});
  for (const std::string& sql : DifferentialCorpus()) {
    SCOPED_TRACE(sql);
    auto canonical = Canonicalize(sql);
    ASSERT_TRUE(canonical.ok()) << canonical.status();

    auto original_result = engine.Execute(sql);
    ASSERT_TRUE(original_result.ok()) << original_result.status();
    auto canonical_result = engine.Execute(canonical->sql);
    ASSERT_TRUE(canonical_result.ok())
        << canonical->sql << ": " << canonical_result.status();

    // Byte-identical: values, row order, column names and types.
    EXPECT_EQ(engine::FingerprintBatch(original_result->batch),
              engine::FingerprintBatch(canonical_result->batch))
        << "canonical form: " << canonical->sql;
  }
}

TEST_F(CanonicalizerDifferentialTest, CanonicalizationIsIdempotent) {
  for (const std::string& sql : DifferentialCorpus()) {
    SCOPED_TRACE(sql);
    auto once = Canonicalize(sql);
    ASSERT_TRUE(once.ok()) << once.status();
    auto twice = Canonicalize(once->sql);
    ASSERT_TRUE(twice.ok()) << once->sql << ": " << twice.status();
    EXPECT_EQ(once->sql, twice->sql);
    EXPECT_EQ(once->cache_key, twice->cache_key);
  }
}

}  // namespace
}  // namespace maxson::serve
