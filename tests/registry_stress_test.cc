// Concurrency stress for CacheRegistry, the hottest shared structure under
// the serving layer: many client sessions Lookup/Snapshot on every plan
// rewrite while a midnight cycle races Put/Invalidate/InvalidateByDir/
// Clear. Run under TSan in CI (tools/ci.sh names this binary in the TSan
// stage); the assertions here check the documented value-copy and
// monotonic-version contracts, TSan checks the locking.

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "core/cache_registry.h"
#include "gtest/gtest.h"

namespace maxson::core {
namespace {

workload::JsonPathLocation Loc(int i) {
  workload::JsonPathLocation loc;
  loc.database = "db";
  loc.table = "t" + std::to_string(i % 8);
  loc.column = "c";
  loc.path = "$.f" + std::to_string(i % 32);
  return loc;
}

CacheEntry MakeEntry(int i) {
  CacheEntry entry;
  entry.location = Loc(i);
  entry.cache_table_dir = "/cache/dir" + std::to_string(i % 4);
  entry.cache_field = "field";
  entry.cache_time = i;
  return entry;
}

TEST(CacheRegistryStressTest, ParallelLookupSnapshotRacingMutation) {
  CacheRegistry registry;
  constexpr int kWriters = 2;
  constexpr int kReaders = 4;
  constexpr int kOpsPerWriter = 4000;
  std::atomic<int> writers_running{kWriters};
  std::atomic<uint64_t> reads{0};

  std::vector<std::thread> threads;
  threads.reserve(kWriters + kReaders);
  for (int w = 0; w < kWriters; ++w) {
    threads.emplace_back([&registry, &writers_running, w] {
      for (int op = 0; op < kOpsPerWriter; ++op) {
        const int i = w + 2 * op;
        registry.Put(MakeEntry(i));
        if (i % 7 == 0) {
          registry.InvalidateByDir("/cache/dir" + std::to_string(i % 4));
        }
        if (i % 13 == 0) registry.Invalidate(Loc(i + 1));
        if (i % 97 == 0) {
          const std::vector<std::string> dirs = registry.Clear();
          (void)dirs;
        }
      }
      writers_running.fetch_sub(1);
    });
  }
  // On a 1-core box the writers can finish before a reader is ever
  // scheduled, so each reader also performs a minimum number of reads
  // after the storm — the concurrent interleaving (when cores allow it)
  // is what TSan checks; the contract checks below hold either way.
  constexpr int kMinReadsPerReader = 64;
  for (int r = 0; r < kReaders; ++r) {
    threads.emplace_back([&registry, &writers_running, &reads, r] {
      uint64_t last_version = 0;
      int i = r;
      while (writers_running.load() > 0 || i - r < kMinReadsPerReader) {
        // Lookup returns by value: the copy must be internally consistent
        // even when a Clear lands immediately after.
        std::optional<CacheEntry> entry = registry.Lookup(Loc(i));
        if (entry.has_value()) {
          EXPECT_EQ(entry->location.Key(), Loc(i).Key());
          EXPECT_FALSE(entry->cache_table_dir.empty());
        }
        const std::vector<CacheEntry> snapshot = registry.Snapshot();
        for (const CacheEntry& e : snapshot) {
          EXPECT_FALSE(e.location.table.empty());
        }
        // version() is monotonic even while mutations race.
        const uint64_t version = registry.version();
        EXPECT_GE(version, last_version);
        last_version = version;
        reads.fetch_add(1);
        ++i;
      }
    });
  }
  for (std::thread& t : threads) t.join();

  EXPECT_GT(reads.load(), 0u);
  EXPECT_GT(registry.version(), 0u);
  EXPECT_GE(registry.lookups(), reads.load());
  // The registry survives the storm in a queryable state.
  registry.Put(MakeEntry(1));
  EXPECT_TRUE(registry.Lookup(Loc(1)).has_value());
}

TEST(CacheRegistryStressTest, VersionBumpsOnEveryMutationKind) {
  CacheRegistry registry;
  uint64_t version = registry.version();
  registry.Put(MakeEntry(3));
  EXPECT_GT(registry.version(), version);
  version = registry.version();
  registry.Invalidate(Loc(3));
  EXPECT_GT(registry.version(), version);
  version = registry.version();
  registry.InvalidateByDir("/cache/dir3");
  EXPECT_GT(registry.version(), version);
  version = registry.version();
  registry.Put(MakeEntry(4));
  const std::vector<std::string> dirs = registry.Clear();
  EXPECT_EQ(dirs.size(), 1u);
  EXPECT_GT(registry.version(), version);
}

}  // namespace
}  // namespace maxson::core
