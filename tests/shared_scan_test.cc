// Tests of the morsel-driven shared-scan executor (exec/shared_scan.h).
//
// The manager-level tests drive SharedScanManager directly with a synthetic
// pass callback, staging subscriptions *before* any Collect so the
// coalescing counts are exact and deterministic: K subscribers over M
// morsels must execute M passes and coalesce (K-1)*M registrations, with
// byte-identical batches fanned out to every subscriber. They also pin the
// attach-safety rules (frozen column unions, predicate-identity gating,
// retired passes never rejoined, validity keying) and the cooperative
// cancellation contract.
//
// The end-to-end tests run real queries over a generated JSON table —
// through the session with sharing toggled, and through MaxsonServer with
// truly concurrent clients — asserting results stay byte-identical to the
// sharing-off ground truth while the maxson_sharedscan_* counters prove
// passes were actually shared. Overlap at the server level is timing-
// dependent, so coalescing there is asserted with a bounded retry loop;
// correctness is asserted on every attempt.

#include <atomic>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "catalog/catalog.h"
#include "core/maxson.h"
#include "engine/fingerprint.h"
#include "exec/shared_scan.h"
#include "exec/thread_pool.h"
#include "gtest/gtest.h"
#include "obs/metrics_registry.h"
#include "serve/server.h"
#include "storage/file_system.h"
#include "workload/data_generator.h"

namespace maxson {
namespace {

using exec::Morsel;
using exec::ScanInterest;
using exec::ScanPredicate;
using exec::ScanSubscription;
using exec::SharedPassOutput;
using exec::SharedScanManager;
using exec::SharedScanPassFn;
using exec::ThreadPool;

// ---------------------------------------------------------------------------
// Manager-level tests: synthetic passes, deterministic staged coalescing.
// ---------------------------------------------------------------------------

constexpr uint64_t kPassInputBytes = 100;
constexpr int kRowsPerMorsel = 2;

std::vector<Morsel> MakeMorsels(size_t n) {
  std::vector<Morsel> morsels;
  for (size_t i = 0; i < n; ++i) {
    Morsel m;
    m.split_index = i;
    m.split_path = "split" + std::to_string(i);
    m.begin_stripe = 0;
    m.end_stripe = 1;
    m.begin_row = i * 100;
    m.end_row = i * 100 + 100;
    morsels.push_back(std::move(m));
  }
  return morsels;
}

ScanInterest MakeInterest(std::vector<std::string> columns,
                          const std::vector<Morsel>& morsels,
                          uint64_t validity = 1, ScanPredicate predicate = {}) {
  ScanInterest interest;
  interest.table_key = "warehouse/db/t";
  interest.validity = validity;
  interest.columns = std::move(columns);
  interest.predicate = std::move(predicate);
  interest.morsels = morsels;
  return interest;
}

/// A pass callback that counts executions and produces a batch whose cell
/// values encode (split, union-column position, row) — so fan-out identity
/// and per-subscriber column mappings are checkable cell by cell.
SharedScanPassFn CountingPass(std::atomic<int>* passes,
                              std::atomic<int>* last_predicates = nullptr) {
  return [passes, last_predicates](
             const Morsel& morsel, size_t /*ordinal*/,
             const std::vector<std::string>& union_columns,
             const std::vector<ScanPredicate>& predicates)
             -> Result<SharedPassOutput> {
    passes->fetch_add(1);
    if (last_predicates != nullptr) {
      last_predicates->store(static_cast<int>(predicates.size()));
    }
    storage::Schema schema;
    for (const std::string& column : union_columns) {
      schema.AddField(column, storage::TypeKind::kInt64);
    }
    SharedPassOutput out;
    out.batch = storage::RecordBatch(schema);
    for (int row = 0; row < kRowsPerMorsel; ++row) {
      std::vector<storage::Value> values;
      values.reserve(union_columns.size());
      for (size_t c = 0; c < union_columns.size(); ++c) {
        values.push_back(storage::Value::Int64(
            static_cast<int64_t>(morsel.split_index) * 100 +
            static_cast<int64_t>(c) * 10 + row));
      }
      out.batch.AppendRow(values);
    }
    out.input_bytes = kPassInputBytes;
    return out;
  };
}

/// A pushed-down `column < literal` predicate with its canonical key, so
/// two subscriptions can agree (or disagree) on pruning identity.
ScanPredicate PredicateLt(const std::string& column, int64_t literal) {
  ScanPredicate predicate;
  storage::SargLeaf leaf;
  leaf.column = column;
  leaf.op = storage::SargOp::kLt;
  leaf.literal = storage::Value::Int64(literal);
  predicate.raw_sarg.AddLeaf(std::move(leaf));
  predicate.key =
      ScanPredicate::KeyFor(predicate.raw_sarg, predicate.cache_sarg);
  return predicate;
}

TEST(SharedScanManagerTest, StagedSubscribersCoalesceToOnePassPerMorsel) {
  SharedScanManager manager;
  const auto morsels = MakeMorsels(3);
  std::atomic<int> passes{0};
  constexpr size_t kSubscribers = 4;

  // Stage every subscription before any Collect: all registrations merge
  // into pending tasks, so the counts below are exact, not timing-lucky.
  std::vector<std::unique_ptr<ScanSubscription>> subs;
  for (size_t i = 0; i < kSubscribers; ++i) {
    subs.push_back(manager.Subscribe(MakeInterest({"a", "b"}, morsels),
                                     CountingPass(&passes)));
    ASSERT_EQ(subs.back()->num_morsels(), morsels.size());
  }
  ThreadPool pool(2);
  for (auto& sub : subs) {
    ASSERT_TRUE(sub->Collect(&pool).ok());
  }

  EXPECT_EQ(passes.load(), 3);
  const auto stats = manager.stats();
  EXPECT_EQ(stats.subscribers, kSubscribers);
  EXPECT_EQ(stats.parse_passes, 3u);
  EXPECT_EQ(stats.coalesced_parses, (kSubscribers - 1) * 3);
  EXPECT_EQ(stats.saved_bytes, (kSubscribers - 1) * 3 * kPassInputBytes);
  EXPECT_EQ(stats.groups_opened, 1u);

  for (size_t ordinal = 0; ordinal < morsels.size(); ++ordinal) {
    // Byte-identical fan-out: every subscriber sees the same batch.
    const std::string fp = engine::FingerprintBatch(subs[0]->batch(ordinal));
    int executors = 0;
    for (auto& sub : subs) {
      EXPECT_EQ(engine::FingerprintBatch(sub->batch(ordinal)), fp);
      executors += sub->executed_by_self(ordinal) ? 1 : 0;
    }
    // Exactly one subscription ran the pass; the rest rode the result.
    EXPECT_EQ(executors, 1);
  }
}

TEST(SharedScanManagerTest, UnionColumnsMapBackByNamePerSubscriber) {
  SharedScanManager manager;
  const auto morsels = MakeMorsels(2);
  std::atomic<int> passes{0};
  auto a =
      manager.Subscribe(MakeInterest({"a"}, morsels), CountingPass(&passes));
  // b's interest order differs from the union's first-seen order {a, b}.
  auto b = manager.Subscribe(MakeInterest({"b", "a"}, morsels),
                             CountingPass(&passes));
  ThreadPool pool(1);
  ASSERT_TRUE(a->Collect(&pool).ok());
  ASSERT_TRUE(b->Collect(&pool).ok());
  EXPECT_EQ(passes.load(), 2);

  for (size_t ordinal = 0; ordinal < morsels.size(); ++ordinal) {
    const auto mapping = b->ColumnMapping(ordinal);
    ASSERT_EQ(mapping.size(), 2u);
    const auto& batch = b->batch(ordinal);
    EXPECT_EQ(batch.schema().field(mapping[0]).name, "b");
    EXPECT_EQ(batch.schema().field(mapping[1]).name, "a");
    // Cell values encode the union position, so a correct mapping reads
    // back b's columns regardless of the batch's physical column order.
    for (int row = 0; row < kRowsPerMorsel; ++row) {
      EXPECT_EQ(batch.column(mapping[0]).GetValue(row).int64_value(),
                static_cast<int64_t>(ordinal) * 100 +
                    static_cast<int64_t>(mapping[0]) * 10 + row);
    }
  }
}

TEST(SharedScanManagerTest, PendingPassesMergePredicatesAsDisjunction) {
  SharedScanManager manager;
  const auto morsels = MakeMorsels(2);
  std::atomic<int> passes{0};
  std::atomic<int> predicate_count{0};
  auto a = manager.Subscribe(
      MakeInterest({"a"}, morsels, 1, PredicateLt("a", 5)),
      CountingPass(&passes, &predicate_count));
  auto b = manager.Subscribe(
      MakeInterest({"a"}, morsels, 1, PredicateLt("a", 7)),
      CountingPass(&passes, &predicate_count));
  ThreadPool pool(1);
  ASSERT_TRUE(a->Collect(&pool).ok());
  ASSERT_TRUE(b->Collect(&pool).ok());
  // One pass per morsel, pruning with both subscribers' predicates OR'd.
  EXPECT_EQ(passes.load(), 2);
  EXPECT_EQ(predicate_count.load(), 2);
  EXPECT_EQ(manager.stats().coalesced_parses, 2u);
}

TEST(SharedScanManagerTest, CompletedPassesJoinOnlyCoveredSubscribers) {
  SharedScanManager manager;
  const auto morsels = MakeMorsels(2);
  std::atomic<int> passes{0};
  ThreadPool pool(1);

  auto a = manager.Subscribe(MakeInterest({"a", "b"}, morsels),
                             CountingPass(&passes));
  ASSERT_TRUE(a->Collect(&pool).ok());
  EXPECT_EQ(passes.load(), 2);
  EXPECT_EQ(manager.stats().saved_bytes, 0u);

  // Same-coverage late arrival attaches to the done, unreleased passes:
  // no new work, and the attach reports the bytes it avoided.
  auto b =
      manager.Subscribe(MakeInterest({"a"}, morsels), CountingPass(&passes));
  ASSERT_TRUE(b->Collect(&pool).ok());
  EXPECT_EQ(passes.load(), 2);
  EXPECT_EQ(manager.stats().coalesced_parses, 2u);
  EXPECT_EQ(manager.stats().saved_bytes, 2 * kPassInputBytes);
  for (size_t ordinal = 0; ordinal < morsels.size(); ++ordinal) {
    EXPECT_FALSE(b->executed_by_self(ordinal));
  }

  // A column outside the frozen union cannot attach: fresh passes.
  auto c = manager.Subscribe(MakeInterest({"a", "c"}, morsels),
                             CountingPass(&passes));
  ASSERT_TRUE(c->Collect(&pool).ok());
  EXPECT_EQ(passes.load(), 4);
}

TEST(SharedScanManagerTest, CompletedPassesGateAttachOnPredicateIdentity) {
  SharedScanManager manager;
  const auto morsels = MakeMorsels(2);
  std::atomic<int> passes{0};
  ThreadPool pool(1);

  // a's passes prune with `a < 5`; they do NOT read all row groups.
  auto a = manager.Subscribe(
      MakeInterest({"a"}, morsels, 1, PredicateLt("a", 5)),
      CountingPass(&passes));
  ASSERT_TRUE(a->Collect(&pool).ok());
  EXPECT_EQ(passes.load(), 2);

  // Identical predicate key: safe to attach to the frozen passes.
  auto same = manager.Subscribe(
      MakeInterest({"a"}, morsels, 1, PredicateLt("a", 5)),
      CountingPass(&passes));
  ASSERT_TRUE(same->Collect(&pool).ok());
  EXPECT_EQ(passes.load(), 2);

  // A wider predicate might need row groups a's pruning skipped: fresh
  // passes, never a silent under-read.
  auto wider = manager.Subscribe(
      MakeInterest({"a"}, morsels, 1, PredicateLt("a", 7)),
      CountingPass(&passes));
  ASSERT_TRUE(wider->Collect(&pool).ok());
  EXPECT_EQ(passes.load(), 4);
}

TEST(SharedScanManagerTest, ValidityChangeStartsAFreshGroup) {
  SharedScanManager manager;
  const auto morsels = MakeMorsels(2);
  std::atomic<int> passes{0};
  // Same table, different cache-validity stamps (a mid-run invalidation):
  // the subscriptions must not share, even staged concurrently.
  auto old_state = manager.Subscribe(MakeInterest({"a"}, morsels, 1),
                                     CountingPass(&passes));
  auto new_state = manager.Subscribe(MakeInterest({"a"}, morsels, 2),
                                     CountingPass(&passes));
  ThreadPool pool(1);
  ASSERT_TRUE(old_state->Collect(&pool).ok());
  ASSERT_TRUE(new_state->Collect(&pool).ok());
  EXPECT_EQ(passes.load(), 4);
  const auto stats = manager.stats();
  EXPECT_EQ(stats.coalesced_parses, 0u);
  EXPECT_EQ(stats.groups_opened, 2u);
}

TEST(SharedScanManagerTest, RetiredPassesAreNeverRejoined) {
  SharedScanManager manager;
  const auto morsels = MakeMorsels(2);
  std::atomic<int> passes{0};
  ThreadPool pool(1);

  auto a =
      manager.Subscribe(MakeInterest({"a"}, morsels), CountingPass(&passes));
  ASSERT_TRUE(a->Collect(&pool).ok());
  // a consumes and releases everything: the passes retire and free their
  // decoded rows. Sharing is a concurrency window, not a cache.
  for (size_t ordinal = 0; ordinal < morsels.size(); ++ordinal) {
    a->Release(ordinal);
  }

  auto late =
      manager.Subscribe(MakeInterest({"a"}, morsels), CountingPass(&passes));
  ASSERT_TRUE(late->Collect(&pool).ok());
  EXPECT_EQ(passes.load(), 4);
  EXPECT_EQ(manager.stats().coalesced_parses, 0u);
}

TEST(SharedScanManagerTest, CancelledSubscriberLeavesCoSubscriberWorking) {
  SharedScanManager manager;
  const auto morsels = MakeMorsels(3);
  std::atomic<int> passes{0};
  auto worker = manager.Subscribe(MakeInterest({"a"}, morsels),
                                  CountingPass(&passes));
  auto quitter = manager.Subscribe(MakeInterest({"a"}, morsels),
                                   CountingPass(&passes));
  ThreadPool pool(1);

  // Cancel before collecting: the quitter claims nothing and reports
  // Cancelled without executing a single pass.
  quitter->Cancel();
  const Status cancelled = quitter->Collect(&pool);
  EXPECT_TRUE(cancelled.IsCancelled()) << cancelled;
  EXPECT_EQ(passes.load(), 0);

  // The co-subscriber is unaffected: it claims and runs the passes itself.
  ASSERT_TRUE(worker->Collect(&pool).ok());
  EXPECT_EQ(passes.load(), 3);
  for (size_t ordinal = 0; ordinal < morsels.size(); ++ordinal) {
    EXPECT_EQ(worker->batch(ordinal).num_rows(),
              static_cast<size_t>(kRowsPerMorsel));
  }
  // Destroying the cancelled subscription consumes its registrations
  // without disturbing the worker's still-held outputs.
  quitter.reset();
  EXPECT_EQ(worker->batch(0).num_rows(), static_cast<size_t>(kRowsPerMorsel));

  // The external cancel flag (the executor's ExecContext cancel) is
  // honoured the same way.
  auto flagged = manager.Subscribe(MakeInterest({"a"}, morsels),
                                   CountingPass(&passes));
  std::atomic<bool> cancel_flag{true};
  EXPECT_TRUE(flagged->Collect(&pool, &cancel_flag).IsCancelled());
}

TEST(SharedScanManagerTest, PassFailurePropagatesToEverySubscriber) {
  SharedScanManager manager;
  const auto morsels = MakeMorsels(2);
  std::atomic<int> passes{0};
  const SharedScanPassFn failing =
      [&passes](const Morsel&, size_t, const std::vector<std::string>&,
                const std::vector<ScanPredicate>&) -> Result<SharedPassOutput> {
    passes.fetch_add(1);
    return Status::IoError("disk on fire");
  };
  auto a = manager.Subscribe(MakeInterest({"a"}, morsels), failing);
  auto b = manager.Subscribe(MakeInterest({"a"}, morsels), failing);
  ThreadPool pool(1);
  const Status first = a->Collect(&pool);
  EXPECT_FALSE(first.ok());
  // b never re-runs the failed passes; it sees the published failure.
  const Status second = b->Collect(&pool);
  EXPECT_FALSE(second.ok());
  EXPECT_EQ(passes.load(), 2);
}

// ---------------------------------------------------------------------------
// End-to-end tests: real queries over a generated JSON table.
// ---------------------------------------------------------------------------

class SharedScanE2ETest : public ::testing::Test {
 protected:
  void SetUp() override {
    root_ = (std::filesystem::temp_directory_path() /
             ("maxson_shared_scan_" + std::to_string(::getpid())))
                .string();
    ASSERT_TRUE(storage::FileSystem::RemoveAll(root_).ok());
    workload::JsonTableSpec spec;
    spec.database = "db";
    spec.table = "t";
    spec.num_properties = 4;
    spec.avg_json_bytes = 120;
    spec.rows = 600;
    spec.rows_per_file = 150;  // 4 splits -> 4 morsels per default scan
    spec.rows_per_group = 50;
    spec.seed = 7;
    auto generated =
        workload::GenerateJsonTable(spec, root_ + "/warehouse", 1, &catalog_);
    ASSERT_TRUE(generated.ok()) << generated.status();

    core::MaxsonConfig config;
    config.cache_root = root_ + "/cache";
    config.engine.default_database = "db";
    config.engine.num_threads = 2;
    config.metrics = &metrics_;
    session_ = std::make_unique<core::MaxsonSession>(&catalog_, config);
  }
  void TearDown() override {
    session_.reset();
    ASSERT_TRUE(storage::FileSystem::RemoveAll(root_).ok());
  }

  /// Fingerprint of `sql` under the session's *current* configuration.
  /// Ground truths are taken before sharing is switched on.
  std::string Fingerprint(const std::string& sql) {
    auto result = session_->Execute(sql);
    EXPECT_TRUE(result.ok()) << sql << ": " << result.status();
    return result.ok() ? engine::FingerprintBatch(result->batch)
                       : std::string();
  }

  void SetSharedScan(bool enabled, uint64_t morsel_rows = 0) {
    core::SessionUpdate update;
    update.shared_scan = enabled;
    update.morsel_rows = morsel_rows;
    ASSERT_TRUE(session_->UpdateConfig(update).ok());
  }

  /// A registry entry for an unrelated table: importing it bumps
  /// CacheRegistry::version() — the mid-run invalidation that must split
  /// sharing groups without corrupting in-flight queries.
  core::CacheEntry UnrelatedRegistryEntry(int i) {
    core::CacheEntry entry;
    entry.location.database = "db";
    entry.location.table = "unrelated";
    entry.location.column = "c";
    entry.location.path = "$.f" + std::to_string(i);
    entry.cache_table_dir = root_ + "/cache/unrelated";
    entry.cache_field = "f";
    entry.cache_time = i;
    return entry;
  }

  std::string root_;
  catalog::Catalog catalog_;
  obs::MetricsRegistry metrics_;
  std::unique_ptr<core::MaxsonSession> session_;
};

TEST_F(SharedScanE2ETest, SharingOnAndOffAreByteIdentical) {
  const std::vector<std::string> queries = {
      "SELECT id FROM t",
      "SELECT id, get_json_object(payload, '$.f1') AS f1 FROM t "
      "WHERE id >= 100",
      "SELECT get_json_object(payload, '$.f2') AS f2 FROM t WHERE id < 50",
  };
  // Ground truth with the private per-query scan path (sharing defaults
  // off on a bare session).
  std::vector<std::string> expected;
  for (const std::string& sql : queries) expected.push_back(Fingerprint(sql));

  // Coarse morsels (one per split), then fine morsels (several per split)
  // to exercise the morsel-order reassembly.
  for (const uint64_t morsel_rows : {uint64_t{0}, uint64_t{60}}) {
    SetSharedScan(true, morsel_rows);
    for (size_t i = 0; i < queries.size(); ++i) {
      EXPECT_EQ(Fingerprint(queries[i]), expected[i])
          << queries[i] << " diverged with morsel_rows=" << morsel_rows;
    }
  }
  // Even sequential queries go through the shared executor when enabled.
  const auto stats = session_->stats();
  EXPECT_TRUE(stats.shared_scan_enabled);
  EXPECT_GT(stats.sharedscan_subscribers, 0u);
  EXPECT_GT(stats.sharedscan_parse_passes, 0u);
  SetSharedScan(false);
}

TEST_F(SharedScanE2ETest, ConcurrentServedClientsCoalesceAndStayIdentical) {
  const std::string sql =
      "SELECT id, get_json_object(payload, '$.f1') AS f1 FROM t "
      "WHERE id < 400";
  const std::string expected = Fingerprint(sql);  // sharing still off here

  serve::ServeOptions options;
  // Result caching off so every client truly scans (the point here is the
  // scan-sharing layer below the result cache).
  options.enable_result_cache = false;
  serve::MaxsonServer server(session_.get(), &catalog_, options);
  ASSERT_TRUE(session_->stats().shared_scan_enabled)
      << "server construction should switch the session to shared scans";

  constexpr size_t kClients = 4;
  std::vector<serve::ClientSession> clients;
  for (size_t i = 0; i < kClients; ++i) {
    clients.push_back(server.Connect("tenant" + std::to_string(i)));
  }

  // Whether K clients actually overlap inside the scan is timing-
  // dependent, so coalescing is asserted over a bounded retry loop;
  // byte-identical results are asserted on every attempt.
  bool coalesced_seen = false;
  for (int attempt = 0; attempt < 50 && !coalesced_seen; ++attempt) {
    const auto before = session_->stats();
    std::atomic<size_t> ready{0};
    std::atomic<bool> go{false};
    std::atomic<bool> ok{true};
    std::vector<std::thread> threads;
    threads.reserve(kClients);
    for (size_t i = 0; i < kClients; ++i) {
      threads.emplace_back([&, i] {
        ready.fetch_add(1);
        while (!go.load(std::memory_order_acquire)) {
        }
        auto outcome = clients[i].Execute(sql);
        if (!outcome.ok() ||
            engine::FingerprintBatch(outcome->result.batch) != expected) {
          ok.store(false);
        }
      });
    }
    while (ready.load() < kClients) {
    }
    go.store(true, std::memory_order_release);
    for (std::thread& t : threads) t.join();
    ASSERT_TRUE(ok.load()) << "a served result diverged from ground truth";

    const auto after = session_->stats();
    EXPECT_EQ(after.sharedscan_subscribers - before.sharedscan_subscribers,
              kClients);
    coalesced_seen = after.sharedscan_coalesced_parses >
                     before.sharedscan_coalesced_parses;
  }
  EXPECT_TRUE(coalesced_seen)
      << "4 concurrent identical queries never shared a parse pass in 50 "
         "attempts";
}

TEST_F(SharedScanE2ETest, MidRunInvalidationKeepsResultsCorrect) {
  const std::string sql =
      "SELECT id, get_json_object(payload, '$.f1') AS f1 FROM t "
      "WHERE id < 300";
  const std::string expected = Fingerprint(sql);
  SetSharedScan(true);

  // Registry churn concurrent with querying: version bumps move new scans
  // to fresh sharing groups; in-flight ones finish against their stamp.
  std::atomic<bool> stop{false};
  std::thread invalidator([&] {
    int i = 0;
    while (!stop.load()) {
      session_->ImportCacheEntries({UnrelatedRegistryEntry(i++ % 7)});
      std::this_thread::yield();
    }
  });

  constexpr size_t kWorkers = 3;
  constexpr int kIterations = 12;
  std::atomic<bool> ok{true};
  std::vector<std::thread> workers;
  for (size_t w = 0; w < kWorkers; ++w) {
    workers.emplace_back([&] {
      for (int i = 0; i < kIterations; ++i) {
        auto result = session_->Execute(sql);
        if (!result.ok() ||
            engine::FingerprintBatch(result->batch) != expected) {
          ok.store(false);
          return;
        }
      }
    });
  }
  for (std::thread& w : workers) w.join();
  stop.store(true);
  invalidator.join();
  EXPECT_TRUE(ok.load());
  SetSharedScan(false);
}

// The TSan target: many threads, mixed queries, registry churn, knob
// flips. Run standalone under ThreadSanitizer by tools/ci.sh.
TEST_F(SharedScanE2ETest, ConcurrentMixedQueriesStress) {
  const std::vector<std::string> queries = {
      "SELECT id FROM t WHERE id < 200",
      "SELECT id, get_json_object(payload, '$.f1') AS f1 FROM t "
      "WHERE id >= 150",
      "SELECT get_json_object(payload, '$.f2') AS f2 FROM t",
  };
  std::vector<std::string> expected;
  for (const std::string& sql : queries) expected.push_back(Fingerprint(sql));
  SetSharedScan(true);

  constexpr size_t kThreads = 6;
  constexpr int kIterations = 8;
  std::atomic<bool> ok{true};
  std::vector<std::thread> threads;
  for (size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kIterations; ++i) {
        const size_t q = (t + i) % queries.size();
        auto result = session_->Execute(queries[q]);
        if (!result.ok() ||
            engine::FingerprintBatch(result->batch) != expected[q]) {
          ok.store(false);
          return;
        }
        if (i % 4 == 3) {
          session_->ImportCacheEntries(
              {UnrelatedRegistryEntry(static_cast<int>(t))});
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_TRUE(ok.load());
  EXPECT_GT(session_->stats().sharedscan_parse_passes, 0u);
  SetSharedScan(false);
}

}  // namespace
}  // namespace maxson
