#include <filesystem>

#include "catalog/catalog.h"
#include "common/random.h"
#include "engine/engine.h"
#include "gtest/gtest.h"
#include "json/raw_filter.h"
#include "storage/file_system.h"
#include "workload/data_generator.h"

namespace maxson::json {
namespace {

TEST(RawFilterTest, FindsNeedleAnywhere) {
  RawFilter filter("cat3");
  EXPECT_TRUE(filter.MightMatch(R"({"f1":"cat3"})"));
  EXPECT_TRUE(filter.MightMatch("cat3"));
  EXPECT_TRUE(filter.MightMatch("xxcat3"));
  EXPECT_TRUE(filter.MightMatch("cat3xx"));
  EXPECT_FALSE(filter.MightMatch(R"({"f1":"cat4"})"));
  EXPECT_FALSE(filter.MightMatch(""));
  EXPECT_FALSE(filter.MightMatch("ca"));
  EXPECT_FALSE(filter.MightMatch("cat"));
  // Near misses that stress the first/last-byte prefilter.
  EXPECT_FALSE(filter.MightMatch("cat2cat1cat0ca t3"));
  EXPECT_TRUE(filter.MightMatch("cat2cat1cat3cat0"));
}

TEST(RawFilterTest, RepeatedCharacterNeedles) {
  RawFilter filter("aaa");
  EXPECT_TRUE(filter.MightMatch("baaab"));
  EXPECT_TRUE(filter.MightMatch("aaa"));
  EXPECT_FALSE(filter.MightMatch("aabaab"));
}

TEST(RawFilterTest, SingleByteNeedle) {
  // m == 1 makes the SIMD first/last-byte prefilter degenerate (first and
  // last broadcast the same byte); the scan must still find every position.
  RawFilter filter("q");
  EXPECT_TRUE(filter.MightMatch("q"));
  EXPECT_TRUE(filter.MightMatch("xq"));
  EXPECT_TRUE(filter.MightMatch(std::string(100, 'x') + "q"));
  EXPECT_TRUE(filter.MightMatch("q" + std::string(100, 'x')));
  EXPECT_FALSE(filter.MightMatch(""));
  EXPECT_FALSE(filter.MightMatch(std::string(200, 'x')));
}

TEST(RawFilterTest, NeedleLongerThanRecord) {
  RawFilter filter("abcdefghijklmnopqrstuvwxyz0123456789");
  EXPECT_FALSE(filter.MightMatch(""));
  EXPECT_FALSE(filter.MightMatch("abc"));
  EXPECT_FALSE(filter.MightMatch("abcdefghijklmnopqrstuvwxyz012345678"));
  EXPECT_TRUE(filter.MightMatch("abcdefghijklmnopqrstuvwxyz0123456789"));
  EXPECT_TRUE(filter.MightMatch("xx abcdefghijklmnopqrstuvwxyz0123456789 yy"));
}

TEST(RawFilterTest, AgreesWithStdFindOnRandomInputs) {
  Rng rng(31);
  for (int trial = 0; trial < 200; ++trial) {
    std::string needle;
    const size_t nl = 1 + rng.NextBounded(6);
    for (size_t i = 0; i < nl; ++i) {
      needle.push_back(static_cast<char>('a' + rng.NextBounded(4)));
    }
    std::string haystack;
    const size_t hl = rng.NextBounded(60);
    for (size_t i = 0; i < hl; ++i) {
      haystack.push_back(static_cast<char>('a' + rng.NextBounded(4)));
    }
    RawFilter filter(needle);
    EXPECT_EQ(filter.MightMatch(haystack),
              haystack.find(needle) != std::string::npos)
        << "needle=" << needle << " haystack=" << haystack;
  }
}

TEST(RawFilterTest, FilterableLiteralGate) {
  EXPECT_TRUE(IsRawFilterableLiteral("cat3"));
  EXPECT_TRUE(IsRawFilterableLiteral("node-12_x"));
  EXPECT_FALSE(IsRawFilterableLiteral("ab"));        // too short
  EXPECT_FALSE(IsRawFilterableLiteral("a\"b"));      // escapable
  EXPECT_FALSE(IsRawFilterableLiteral("tab\there")); // escapable
  EXPECT_FALSE(IsRawFilterableLiteral("emoji😀"));   // non-ASCII
}

class RawFilterEngineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = (std::filesystem::temp_directory_path() /
            ("maxson_rawfilter_" + std::to_string(::getpid())))
               .string();
    ASSERT_TRUE(storage::FileSystem::RemoveAll(dir_).ok());
    workload::JsonTableSpec spec;
    spec.database = "db";
    spec.table = "t";
    spec.num_properties = 12;
    spec.rows = 2000;
    spec.rows_per_file = 1000;
    auto table = workload::GenerateJsonTable(spec, dir_, 3, &catalog_);
    ASSERT_TRUE(table.ok()) << table.status();
  }
  void TearDown() override {
    ASSERT_TRUE(storage::FileSystem::RemoveAll(dir_).ok());
  }
  std::string dir_;
  catalog::Catalog catalog_;
};

TEST_F(RawFilterEngineTest, ResultsIdenticalWithAndWithoutPrefilter) {
  engine::EngineConfig plain;
  plain.default_database = "db";
  engine::EngineConfig filtered = plain;
  filtered.enable_raw_filter = true;
  engine::QueryEngine off(&catalog_, plain);
  engine::QueryEngine on(&catalog_, filtered);

  const char* queries[] = {
      "SELECT id FROM db.t WHERE get_json_object(payload, '$.f1') = 'cat3'",
      "SELECT id FROM db.t WHERE get_json_object(payload, '$.f1') = 'cat3' "
      "AND id < 500",
      "SELECT COUNT(*) FROM db.t WHERE "
      "get_json_object(payload, '$.f1') = 'absent_value'",
  };
  for (const char* sql : queries) {
    auto a = off.Execute(sql);
    auto b = on.Execute(sql);
    ASSERT_TRUE(a.ok()) << sql;
    ASSERT_TRUE(b.ok()) << sql;
    ASSERT_EQ(a->batch.num_rows(), b->batch.num_rows()) << sql;
    for (size_t r = 0; r < a->batch.num_rows(); ++r) {
      EXPECT_EQ(a->batch.column(0).GetValue(r).ToString(),
                b->batch.column(0).GetValue(r).ToString());
    }
  }
}

TEST_F(RawFilterEngineTest, PrefilterSkipsParsingForNonMatches) {
  engine::EngineConfig config;
  config.default_database = "db";
  config.enable_raw_filter = true;
  engine::QueryEngine engine(&catalog_, config);
  auto result = engine.Execute(
      "SELECT id FROM db.t WHERE get_json_object(payload, '$.f1') = 'cat3'");
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->batch.num_rows(), 200u);  // 10% of 2000
  // 90% of rows never reached the parser.
  EXPECT_GE(result->metrics.raw_filtered_rows, 1700u);
  EXPECT_LE(result->metrics.parse.records_parsed, 2000u - 1700u + 200u);
}

TEST_F(RawFilterEngineTest, NoPrefilterForUnsafeLiterals) {
  engine::EngineConfig config;
  config.default_database = "db";
  config.enable_raw_filter = true;
  engine::QueryEngine engine(&catalog_, config);
  // Short literal: gate rejects, no rows prefiltered, results still right.
  auto result = engine.Execute(
      "SELECT COUNT(*) FROM db.t WHERE "
      "get_json_object(payload, '$.f1') = 'xy'");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->metrics.raw_filtered_rows, 0u);
}

}  // namespace
}  // namespace maxson::json
