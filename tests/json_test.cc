#include <string>

#include "common/random.h"
#include "gtest/gtest.h"
#include "json/dom_parser.h"
#include "json/json_path.h"
#include "json/json_value.h"
#include "json/json_writer.h"
#include "json/mison_parser.h"

namespace maxson::json {
namespace {

TEST(JsonValueTest, TypePredicates) {
  EXPECT_TRUE(JsonValue::Null().is_null());
  EXPECT_TRUE(JsonValue::Bool(true).is_bool());
  EXPECT_TRUE(JsonValue::Int(3).is_int());
  EXPECT_TRUE(JsonValue::Double(3.5).is_double());
  EXPECT_TRUE(JsonValue::Int(3).is_number());
  EXPECT_TRUE(JsonValue::String("x").is_string());
  EXPECT_TRUE(JsonValue::Array().is_array());
  EXPECT_TRUE(JsonValue::Object().is_object());
}

TEST(JsonValueTest, ObjectPreservesInsertionOrderAndOverwrites) {
  JsonValue obj = JsonValue::Object();
  obj.Set("b", JsonValue::Int(1));
  obj.Set("a", JsonValue::Int(2));
  obj.Set("b", JsonValue::Int(3));  // overwrite keeps position
  ASSERT_EQ(obj.members().size(), 2u);
  EXPECT_EQ(obj.members()[0].first, "b");
  EXPECT_EQ(obj.members()[0].second.int_value(), 3);
  EXPECT_EQ(obj.Find("a")->int_value(), 2);
  EXPECT_EQ(obj.Find("missing"), nullptr);
}

TEST(JsonValueTest, Equality) {
  JsonValue a = JsonValue::Object();
  a.Set("x", JsonValue::Int(1));
  JsonValue b = JsonValue::Object();
  b.Set("x", JsonValue::Int(1));
  EXPECT_EQ(a, b);
  b.Set("x", JsonValue::Double(1.0));
  EXPECT_FALSE(a == b);  // int and double are distinct types
}

TEST(DomParserTest, ParsesScalars) {
  EXPECT_TRUE(ParseJson("null")->is_null());
  EXPECT_EQ(ParseJson("true")->bool_value(), true);
  EXPECT_EQ(ParseJson("false")->bool_value(), false);
  EXPECT_EQ(ParseJson("42")->int_value(), 42);
  EXPECT_EQ(ParseJson("-17")->int_value(), -17);
  EXPECT_DOUBLE_EQ(ParseJson("3.25")->double_value(), 3.25);
  EXPECT_DOUBLE_EQ(ParseJson("1e3")->double_value(), 1000.0);
  EXPECT_DOUBLE_EQ(ParseJson("-2.5E-2")->double_value(), -0.025);
  EXPECT_EQ(ParseJson("\"hi\"")->string_value(), "hi");
}

TEST(DomParserTest, ParsesNestedStructures) {
  auto result = ParseJson(R"({"a":[1,{"b":"c"},null],"d":{"e":2.5}})");
  ASSERT_TRUE(result.ok()) << result.status();
  const JsonValue& root = *result;
  const JsonValue* a = root.Find("a");
  ASSERT_NE(a, nullptr);
  ASSERT_TRUE(a->is_array());
  ASSERT_EQ(a->elements().size(), 3u);
  EXPECT_EQ(a->At(0).int_value(), 1);
  EXPECT_EQ(a->At(1).Find("b")->string_value(), "c");
  EXPECT_TRUE(a->At(2).is_null());
  EXPECT_DOUBLE_EQ(root.Find("d")->Find("e")->double_value(), 2.5);
}

TEST(DomParserTest, HandlesEscapes) {
  auto result = ParseJson(R"("a\"b\\c\nd\teA")");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->string_value(), "a\"b\\c\nd\teA");
}

TEST(DomParserTest, HandlesSurrogatePairs) {
  auto result = ParseJson(R"("😀")");  // emoji
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->string_value(), "\xF0\x9F\x98\x80");
}

TEST(DomParserTest, RejectsMalformedInput) {
  EXPECT_FALSE(ParseJson("").ok());
  EXPECT_FALSE(ParseJson("{").ok());
  EXPECT_FALSE(ParseJson("[1,]").ok());
  EXPECT_FALSE(ParseJson("{\"a\":}").ok());
  EXPECT_FALSE(ParseJson("{\"a\" 1}").ok());
  EXPECT_FALSE(ParseJson("tru").ok());
  EXPECT_FALSE(ParseJson("01a").ok());
  EXPECT_FALSE(ParseJson("\"unterminated").ok());
  EXPECT_FALSE(ParseJson("1 2").ok());
  EXPECT_FALSE(ParseJson("\"\\uD800\"").ok());  // unpaired surrogate
}

TEST(DomParserTest, RejectsExcessiveNesting) {
  std::string deep(1000, '[');
  deep += std::string(1000, ']');
  EXPECT_FALSE(ParseJson(deep).ok());
}

TEST(JsonWriterTest, RoundTripsThroughParser) {
  const std::string text =
      R"({"item_id":1,"item_name":"app\"le","sale_count":10,"nested":{"a":[1,2.5,true,null]}})";
  auto parsed = ParseJson(text);
  ASSERT_TRUE(parsed.ok());
  const std::string rewritten = WriteJson(*parsed);
  auto reparsed = ParseJson(rewritten);
  ASSERT_TRUE(reparsed.ok());
  EXPECT_EQ(*parsed, *reparsed);
}

TEST(JsonWriterTest, EscapesControlCharacters) {
  std::string out;
  const char raw[] = {'a', '\x01', 'b'};
  AppendEscapedString(std::string_view(raw, 3), &out);
  EXPECT_EQ(out, "\"a\\u0001b\"");
}

class JsonRoundTripTest : public ::testing::TestWithParam<uint64_t> {};

/// Generates a random document and checks write->parse is the identity.
JsonValue RandomValue(Rng* rng, int depth) {
  const int pick = depth > 3 ? static_cast<int>(rng->NextBounded(5))
                             : static_cast<int>(rng->NextBounded(7));
  switch (pick) {
    case 0:
      return JsonValue::Null();
    case 1:
      return JsonValue::Bool(rng->NextBool());
    case 2:
      return JsonValue::Int(rng->NextInt(-1000000, 1000000));
    case 3:
      return JsonValue::Double(rng->NextGaussian(0, 100));
    case 4: {
      std::string s;
      const size_t len = rng->NextBounded(12);
      for (size_t i = 0; i < len; ++i) {
        s.push_back(static_cast<char>(rng->NextInt(32, 126)));
      }
      return JsonValue::String(std::move(s));
    }
    case 5: {
      JsonValue arr = JsonValue::Array();
      const size_t n = rng->NextBounded(4);
      for (size_t i = 0; i < n; ++i) arr.Append(RandomValue(rng, depth + 1));
      return arr;
    }
    default: {
      JsonValue obj = JsonValue::Object();
      const size_t n = rng->NextBounded(4);
      for (size_t i = 0; i < n; ++i) {
        obj.Set("k" + std::to_string(i), RandomValue(rng, depth + 1));
      }
      return obj;
    }
  }
}

TEST_P(JsonRoundTripTest, WriteParseIdentity) {
  Rng rng(GetParam());
  for (int i = 0; i < 50; ++i) {
    JsonValue doc = RandomValue(&rng, 0);
    auto reparsed = ParseJson(WriteJson(doc));
    ASSERT_TRUE(reparsed.ok()) << reparsed.status();
    EXPECT_EQ(doc, *reparsed);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, JsonRoundTripTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

TEST(JsonPathTest, ParsesDotAndBracketForms) {
  auto p = JsonPath::Parse("$.a.b_c[2]['d e']");
  ASSERT_TRUE(p.ok()) << p.status();
  ASSERT_EQ(p->steps().size(), 4u);
  EXPECT_EQ(p->steps()[0].field, "a");
  EXPECT_EQ(p->steps()[1].field, "b_c");
  EXPECT_EQ(p->steps()[2].index, 2);
  EXPECT_EQ(p->steps()[3].field, "d e");
}

TEST(JsonPathTest, ToStringCanonicalizes) {
  auto p = JsonPath::Parse("$.a[0].b");
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(p->ToString(), "$.a[0].b");
}

TEST(JsonPathTest, RejectsMalformedPaths) {
  EXPECT_FALSE(JsonPath::Parse("").ok());
  EXPECT_FALSE(JsonPath::Parse("a.b").ok());
  EXPECT_FALSE(JsonPath::Parse("$.").ok());
  EXPECT_FALSE(JsonPath::Parse("$[x]").ok());
  EXPECT_FALSE(JsonPath::Parse("$['unterminated").ok());
  EXPECT_FALSE(JsonPath::Parse("$.a..b").ok());
}

TEST(JsonPathTest, EvaluatesAgainstDom) {
  auto doc = ParseJson(R"({"a":{"b":[10,20,{"c":"found"}]}})");
  ASSERT_TRUE(doc.ok());
  auto p = JsonPath::Parse("$.a.b[2].c");
  ASSERT_TRUE(p.ok());
  const JsonValue* node = p->Evaluate(*doc);
  ASSERT_NE(node, nullptr);
  EXPECT_EQ(node->string_value(), "found");
  EXPECT_EQ(JsonPath::Parse("$.a.missing")->Evaluate(*doc), nullptr);
  EXPECT_EQ(JsonPath::Parse("$.a.b[9]")->Evaluate(*doc), nullptr);
  EXPECT_EQ(JsonPath::Parse("$.a.b.c")->Evaluate(*doc), nullptr);
}

TEST(GetJsonObjectTest, RendersLikeHive) {
  const std::string json =
      R"({"name":"apple","count":10,"price":2.5,"ok":true,"tags":["a","b"],"nil":null})";
  EXPECT_EQ(*GetJsonObject(json, *JsonPath::Parse("$.name")), "apple");
  EXPECT_EQ(*GetJsonObject(json, *JsonPath::Parse("$.count")), "10");
  EXPECT_EQ(*GetJsonObject(json, *JsonPath::Parse("$.ok")), "true");
  EXPECT_EQ(*GetJsonObject(json, *JsonPath::Parse("$.tags")), R"(["a","b"])");
  EXPECT_EQ(*GetJsonObject(json, *JsonPath::Parse("$.nil")), "null");
  EXPECT_EQ(GetJsonObject(json, *JsonPath::Parse("$.absent")).status().code(),
            StatusCode::kNotFound);
}

TEST(StructuralIndexTest, FindsColonsWithLevels) {
  StructuralIndex index(R"({"a":1,"b":{"c":2},"d":3})");
  ASSERT_FALSE(index.malformed());
  ASSERT_EQ(index.colons().size(), 4u);
  EXPECT_EQ(index.colons()[0].level, 1u);  // a
  EXPECT_EQ(index.colons()[1].level, 1u);  // b
  EXPECT_EQ(index.colons()[2].level, 2u);  // c
  EXPECT_EQ(index.colons()[3].level, 1u);  // d
}

TEST(StructuralIndexTest, IgnoresStructuralCharsInStrings) {
  StructuralIndex index(R"({"a":"x:{}\",y","b":2})");
  ASSERT_FALSE(index.malformed());
  ASSERT_EQ(index.colons().size(), 2u);
  EXPECT_EQ(index.KeyBefore(0), "a");
  EXPECT_EQ(index.KeyBefore(1), "b");
}

TEST(StructuralIndexTest, DetectsMalformedRecords) {
  EXPECT_TRUE(StructuralIndex(R"({"a":1)").malformed());
  EXPECT_TRUE(StructuralIndex(R"({"a":"unterminated})").malformed());
  EXPECT_TRUE(StructuralIndex(R"(}{)").malformed());
  EXPECT_TRUE(StructuralIndex("").malformed());
}

TEST(StructuralIndexTest, RawValueSpans) {
  StructuralIndex index(
      R"({"s":"str","n":-1.5,"o":{"x":[1,2]},"arr":[{"y":0}],"last":true})");
  ASSERT_FALSE(index.malformed());
  EXPECT_EQ(index.RawValueAfter(0), "\"str\"");
  EXPECT_EQ(index.RawValueAfter(1), "-1.5");
  EXPECT_EQ(index.RawValueAfter(2), R"({"x":[1,2]})");
  // colon index 3 is "x" at level 2
  EXPECT_EQ(index.RawValueAfter(3), "[1,2]");
  EXPECT_EQ(index.RawValueAfter(4), R"([{"y":0}])");
}

TEST(MisonParserTest, ExtractsTopLevelFields) {
  MisonParser parser;
  const std::string json =
      R"({"item_id":7,"item_name":"apple","sale_count":10,"turnover":20.5})";
  EXPECT_EQ(*parser.Extract(json, *JsonPath::Parse("$.item_name")), "apple");
  EXPECT_EQ(*parser.Extract(json, *JsonPath::Parse("$.item_id")), "7");
  EXPECT_EQ(*parser.Extract(json, *JsonPath::Parse("$.turnover")), "20.5");
}

TEST(MisonParserTest, ExtractsNestedFieldsAndArrays) {
  MisonParser parser;
  const std::string json =
      R"({"meta":{"geo":{"lat":1.5,"lon":-2}},"tags":[{"k":"a"},{"k":"b"}]})";
  EXPECT_EQ(*parser.Extract(json, *JsonPath::Parse("$.meta.geo.lat")), "1.5");
  EXPECT_EQ(*parser.Extract(json, *JsonPath::Parse("$.meta.geo.lon")), "-2");
  EXPECT_EQ(*parser.Extract(json, *JsonPath::Parse("$.tags[1].k")), "b");
}

TEST(MisonParserTest, MissingFieldsReportNotFound) {
  MisonParser parser;
  const std::string json = R"({"a":1})";
  EXPECT_EQ(parser.Extract(json, *JsonPath::Parse("$.b")).status().code(),
            StatusCode::kNotFound);
  EXPECT_EQ(
      parser.Extract(json, *JsonPath::Parse("$.a[3]")).status().code(),
      StatusCode::kNotFound);
}

TEST(MisonParserTest, SpeculationHitsOnStableSchema) {
  MisonParser parser;
  auto path = JsonPath::Parse("$.c");
  ASSERT_TRUE(path.ok());
  for (int i = 0; i < 100; ++i) {
    const std::string json = R"({"a":1,"b":2,"c":)" + std::to_string(i) + "}";
    EXPECT_EQ(*parser.Extract(json, *path), std::to_string(i));
  }
  // First record has nothing memoized; the remaining 99 should hit.
  EXPECT_GE(parser.speculation_hits(), 90u);
  EXPECT_EQ(parser.speculation_misses(), 0u);
}

TEST(MisonParserTest, SpeculationMissesOnVariableSchema) {
  MisonParser parser;
  auto path = JsonPath::Parse("$.c");
  ASSERT_TRUE(path.ok());
  for (int i = 0; i < 100; ++i) {
    // Alternate field order so the memoized ordinal keeps going stale.
    const std::string json =
        (i % 2 == 0) ? R"({"a":1,"b":2,"c":9})" : R"({"c":9,"a":1,"b":2})";
    EXPECT_EQ(*parser.Extract(json, *path), "9");
  }
  EXPECT_GT(parser.speculation_misses(), 40u);
}

TEST(MisonParserTest, AgreesWithDomParserOnExtraction) {
  // Property: for any path present in the document, Mison extraction and
  // DOM-based get_json_object agree.
  MisonParser parser;
  const std::string json =
      R"({"id":3,"name":"x y","nested":{"a":{"b":[5,6,7]},"c":true},"arr":[1,{"z":"w"}],"f":1.25})";
  const char* paths[] = {"$.id",          "$.name",       "$.nested.a.b[0]",
                         "$.nested.a.b[2]", "$.nested.c", "$.arr[1].z",
                         "$.f"};
  for (const char* p : paths) {
    auto path = JsonPath::Parse(p);
    ASSERT_TRUE(path.ok());
    auto via_dom = GetJsonObject(json, *path);
    auto via_mison = parser.Extract(json, *path);
    ASSERT_TRUE(via_dom.ok()) << p;
    ASSERT_TRUE(via_mison.ok()) << p << ": " << via_mison.status();
    EXPECT_EQ(*via_dom, *via_mison) << p;
  }
}

TEST(MisonParserTest, HandlesEscapedQuotesInValues) {
  MisonParser parser;
  const std::string json = R"({"a":"he said \"hi\"","b":2})";
  EXPECT_EQ(*parser.Extract(json, *JsonPath::Parse("$.a")), "he said \"hi\"");
  EXPECT_EQ(*parser.Extract(json, *JsonPath::Parse("$.b")), "2");
}

}  // namespace
}  // namespace maxson::json
