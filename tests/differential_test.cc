// Differential property tests: independent implementations must agree.
//
//  * Mison-style structural-index extraction vs DOM-based get_json_object,
//    over thousands of generated records (stable and variable schemas,
//    all nesting levels of Table II).
//  * SQL expression evaluation vs a hand-rolled oracle on random literals.
//  * CORC round trip under randomized writer options.

#include <string>

#include "common/random.h"
#include "gtest/gtest.h"
#include "json/dom_parser.h"
#include "json/json_path.h"
#include "json/json_value.h"
#include "json/json_writer.h"
#include "json/mison_parser.h"
#include "workload/data_generator.h"

namespace maxson {
namespace {

struct CorpusSpec {
  int properties;
  int nesting;
  int avg_bytes;
  double variability;
};

class MisonDomDifferentialTest
    : public ::testing::TestWithParam<CorpusSpec> {};

TEST_P(MisonDomDifferentialTest, ExtractionAgreesOnGeneratedCorpus) {
  const CorpusSpec& spec = GetParam();
  workload::JsonTableSpec table;
  table.table = "fuzz";
  table.num_properties = spec.properties;
  table.nesting_level = spec.nesting;
  table.avg_json_bytes = spec.avg_bytes;
  table.schema_variability = spec.variability;
  table.seed = static_cast<uint64_t>(spec.properties * 131 + spec.nesting);

  // Paths: every scalar field, plus one nested leaf when applicable.
  std::vector<json::JsonPath> paths;
  const int nested_fields =
      spec.nesting > 1 ? std::max(1, spec.properties / 6) : 0;
  for (int f = 0; f < std::min(spec.properties, 12); ++f) {
    const bool is_nested_slot =
        nested_fields > 0 && f > 2 && f <= 2 + nested_fields;
    if (is_nested_slot) continue;
    auto p = json::JsonPath::Parse("$.f" + std::to_string(f));
    ASSERT_TRUE(p.ok());
    paths.push_back(std::move(*p));
  }
  if (spec.nesting > 1) {
    std::string deep = "$.f3";
    for (int d = 0; d < spec.nesting - 1; ++d) {
      deep += ".n" + std::to_string(d);
    }
    auto p = json::JsonPath::Parse(deep + ".leaf");
    ASSERT_TRUE(p.ok());
    paths.push_back(std::move(*p));
  }

  json::MisonParser mison;
  int disagreements = 0;
  for (uint64_t row = 0; row < 400; ++row) {
    const std::string record = workload::GenerateJsonRecord(table, row);
    for (const json::JsonPath& path : paths) {
      auto via_dom = json::GetJsonObject(record, path);
      auto via_mison = mison.Extract(record, path);
      if (via_dom.ok() != via_mison.ok()) {
        ++disagreements;
        ADD_FAILURE() << "presence disagreement on row " << row << " path "
                      << path.ToString() << ": dom="
                      << via_dom.status().ToString()
                      << " mison=" << via_mison.status().ToString()
                      << "\nrecord: " << record;
        continue;
      }
      if (via_dom.ok() && *via_dom != *via_mison) {
        ++disagreements;
        ADD_FAILURE() << "value disagreement on row " << row << " path "
                      << path.ToString() << ": dom='" << *via_dom
                      << "' mison='" << *via_mison << "'";
      }
    }
    if (disagreements > 3) break;  // don't flood the log
  }
}

INSTANTIATE_TEST_SUITE_P(
    TableIIShapes, MisonDomDifferentialTest,
    ::testing::Values(CorpusSpec{11, 1, 408, 0.0},    // Q1-like
                      CorpusSpec{17, 1, 655, 0.0},    // Q2-like
                      CorpusSpec{206, 4, 4830, 0.2},  // Q3-like
                      CorpusSpec{26, 3, 582, 0.0},    // Q5-like
                      CorpusSpec{107, 5, 2031, 0.0},  // Q6-like
                      CorpusSpec{319, 3, 21459, 0.4}, // Q9-like
                      CorpusSpec{90, 1, 8692, 0.4},   // Q10-like
                      CorpusSpec{12, 2, 252, 0.9}));  // high variability

TEST(MisonDomDifferentialTest, AgreesOnRandomDocumentsViaWriter) {
  // Random DOM trees serialized by our writer: both parsers must agree on
  // extraction of every top-level object member.
  Rng rng(1234);
  json::MisonParser mison;
  for (int trial = 0; trial < 300; ++trial) {
    json::JsonValue doc = json::JsonValue::Object();
    const size_t members = 1 + rng.NextBounded(8);
    for (size_t m = 0; m < members; ++m) {
      const std::string key = "k" + std::to_string(m);
      switch (rng.NextBounded(5)) {
        case 0:
          doc.Set(key, json::JsonValue::Int(rng.NextInt(-1000, 1000)));
          break;
        case 1:
          doc.Set(key, json::JsonValue::Double(rng.NextGaussian(0, 10)));
          break;
        case 2: {
          std::string s;
          const size_t len = rng.NextBounded(15);
          for (size_t i = 0; i < len; ++i) {
            s.push_back(static_cast<char>(rng.NextInt(32, 126)));
          }
          doc.Set(key, json::JsonValue::String(std::move(s)));
          break;
        }
        case 3:
          doc.Set(key, json::JsonValue::Bool(rng.NextBool()));
          break;
        default: {
          json::JsonValue nested = json::JsonValue::Object();
          nested.Set("inner", json::JsonValue::Int(rng.NextInt(0, 99)));
          doc.Set(key, std::move(nested));
        }
      }
    }
    const std::string text = json::WriteJson(doc);
    for (size_t m = 0; m < members; ++m) {
      auto path = json::JsonPath::Parse("$.k" + std::to_string(m));
      ASSERT_TRUE(path.ok());
      auto via_dom = json::GetJsonObject(text, *path);
      auto via_mison = mison.Extract(text, *path);
      ASSERT_EQ(via_dom.ok(), via_mison.ok()) << text;
      if (via_dom.ok()) {
        EXPECT_EQ(*via_dom, *via_mison)
            << "path $.k" << m << " in " << text;
      }
    }
  }
}

TEST(JsonPathPropertyTest, EvaluateMatchesManualTraversal) {
  // Property: JsonPath::Evaluate on writer-serialized documents matches a
  // straightforward manual walk.
  Rng rng(99);
  for (int trial = 0; trial < 100; ++trial) {
    json::JsonValue doc = json::JsonValue::Object();
    json::JsonValue level2 = json::JsonValue::Object();
    json::JsonValue arr = json::JsonValue::Array();
    const size_t n = 1 + rng.NextBounded(5);
    for (size_t i = 0; i < n; ++i) {
      arr.Append(json::JsonValue::Int(static_cast<int64_t>(i * 7)));
    }
    level2.Set("arr", std::move(arr));
    doc.Set("x", std::move(level2));
    const size_t pick = rng.NextBounded(n + 2);  // sometimes out of range
    auto path =
        json::JsonPath::Parse("$.x.arr[" + std::to_string(pick) + "]");
    ASSERT_TRUE(path.ok());
    const json::JsonValue* node = path->Evaluate(doc);
    if (pick < n) {
      ASSERT_NE(node, nullptr);
      EXPECT_EQ(node->int_value(), static_cast<int64_t>(pick * 7));
    } else {
      EXPECT_EQ(node, nullptr);
    }
  }
}

}  // namespace
}  // namespace maxson
