// Differential tests of the on-demand parsing tier (src/json/
// ondemand_parser) against the DOM baseline (json::GetJsonObject), in the
// style of simd_kernel_test: every ISA level the host supports runs the
// same corpus — workload-generator documents plus adversarial inputs
// (deep nesting, escapes, truncated docs, duplicate keys, NaN/huge
// numbers) — and must produce byte-identical values or identical typed
// errors. The one documented divergence (token-level garbage confined to
// a skipped subtree) is pinned by its own test.

#include <string>
#include <vector>

#include "common/random.h"
#include "gtest/gtest.h"
#include "json/json_path.h"
#include "json/ondemand_parser.h"
#include "simd/isa.h"
#include "simd/kernels.h"
#include "workload/data_generator.h"

namespace maxson {
namespace {

using json::JsonPath;
using json::OndemandParser;
using simd::Isa;

/// Forces a dispatch level for one scope and restores the previous one.
class IsaGuard {
 public:
  explicit IsaGuard(Isa level) : previous_(simd::ActiveIsa()) {
    EXPECT_EQ(simd::ForceIsa(level), level)
        << "host cannot run " << simd::IsaName(level);
  }
  ~IsaGuard() { simd::ForceIsa(previous_); }

 private:
  Isa previous_;
};

/// Every level the host supports, scalar first.
std::vector<Isa> SupportedLevels() {
  std::vector<Isa> levels = {Isa::kScalar};
  if (simd::BestSupportedIsa() >= Isa::kSse2) levels.push_back(Isa::kSse2);
  if (simd::BestSupportedIsa() >= Isa::kAvx2) levels.push_back(Isa::kAvx2);
  return levels;
}

JsonPath MustParsePath(const std::string& text) {
  Result<JsonPath> parsed = JsonPath::Parse(text);
  EXPECT_TRUE(parsed.ok()) << text;
  return parsed.ok() ? *parsed : JsonPath();
}

/// Strict oracle: the two tiers must be indistinguishable — identical
/// bytes on success, identical status codes on error, and the exact same
/// NotFound message (callers see that text).
void ExpectStrict(OndemandParser* parser, const std::string& doc,
                  const JsonPath& path) {
  const Result<std::string> dom = json::GetJsonObject(doc, path);
  const Result<std::string> ond = parser->Extract(doc, path);
  if (dom.ok()) {
    ASSERT_TRUE(ond.ok()) << "on-demand error '" << ond.status().message()
                          << "' where DOM succeeded, doc=" << doc
                          << " path=" << path.ToString();
    EXPECT_EQ(*ond, *dom) << "doc=" << doc << " path=" << path.ToString();
    return;
  }
  ASSERT_FALSE(ond.ok()) << "on-demand value '" << *ond
                         << "' where DOM errored '" << dom.status().message()
                         << "', doc=" << doc << " path=" << path.ToString();
  EXPECT_EQ(ond.status().code(), dom.status().code())
      << "on-demand '" << ond.status().message() << "' vs DOM '"
      << dom.status().message() << "', doc=" << doc
      << " path=" << path.ToString();
  if (dom.status().code() == StatusCode::kNotFound) {
    EXPECT_EQ(ond.status().message(), dom.status().message());
  }
}

/// Soundness oracle for random fuzz input, where token-level garbage can
/// land in skipped subtrees: whenever DOM succeeds the on-demand tier must
/// match it byte for byte (no false errors, no wrong values); when DOM
/// fails, on-demand may either fail too or succeed past untouched garbage.
void ExpectSound(OndemandParser* parser, const std::string& doc,
                 const JsonPath& path) {
  const Result<std::string> dom = json::GetJsonObject(doc, path);
  const Result<std::string> ond = parser->Extract(doc, path);
  if (dom.ok()) {
    ASSERT_TRUE(ond.ok()) << "on-demand error '" << ond.status().message()
                          << "' where DOM succeeded, doc=" << doc
                          << " path=" << path.ToString();
    EXPECT_EQ(*ond, *dom) << "doc=" << doc << " path=" << path.ToString();
  } else if (dom.status().code() == StatusCode::kNotFound) {
    ASSERT_FALSE(ond.ok()) << "doc=" << doc << " path=" << path.ToString();
    EXPECT_EQ(ond.status().message(), dom.status().message());
  }
}

TEST(OndemandParserTest, WorkloadDocumentsMatchDomAtEveryLevel) {
  // Documents across schema shapes the generator produces: flat and
  // nested, stable and variable, small and large.
  struct SpecCase {
    int props;
    int nesting;
    double variability;
    int bytes;
  };
  const std::vector<SpecCase> cases = {
      {5, 1, 0.0, 200},  {17, 1, 0.0, 500},  {17, 3, 0.0, 500},
      {17, 2, 0.5, 500}, {40, 3, 0.25, 2000},
  };
  const std::vector<std::string> path_texts = {
      "$.f0",         "$.f1",      "$.f2",       "$.f3",
      "$.f4",         "$.f16",     "$.blob",     "$.missing",
      "$.f3.leaf",    "$.f3.n0.leaf", "$.f3.n0.n1.leaf", "$.f0[0]",
      "$.f3.missing", "$",
  };
  std::vector<JsonPath> paths;
  paths.reserve(path_texts.size());
  for (const std::string& t : path_texts) paths.push_back(MustParsePath(t));

  for (Isa level : SupportedLevels()) {
    IsaGuard guard(level);
    OndemandParser parser;
    for (const SpecCase& c : cases) {
      workload::JsonTableSpec spec;
      spec.table = "t";
      spec.num_properties = c.props;
      spec.nesting_level = c.nesting;
      spec.schema_variability = c.variability;
      spec.avg_json_bytes = c.bytes;
      spec.seed = 77;
      for (uint64_t row = 0; row < 40; ++row) {
        const std::string doc = workload::GenerateJsonRecord(spec, row);
        for (const JsonPath& path : paths) {
          ExpectStrict(&parser, doc, path);
        }
      }
    }
  }
}

TEST(OndemandParserTest, AdversarialStructuralInputsMatchDomAtEveryLevel) {
  struct Case {
    std::string doc;
    std::string path;
  };
  std::vector<Case> cases = {
      // Duplicate keys: last occurrence wins, at any type.
      {R"({"a":1,"a":2})", "$.a"},
      {R"({"a":{"x":1},"a":[7,8]})", "$.a[1]"},
      {R"({"a":[1],"a":{"x":"y"},"b":3})", "$.a.x"},
      {R"({"a":1,"b":{"a":9},"a":3})", "$.a"},
      {R"({"a":"first","b":2,"a":"last"})", "$.a"},
      // Escapes: in keys, in values, escaped quotes and backslashes, and
      // \uXXXX including a surrogate pair.
      {R"({"k\"ey":1,"other":2})", "$.other"},
      {R"({"a":"va\"l,ue}"})", "$.a"},
      {R"({"a\\":1,"b":2})", "$.b"},
      {R"({"a":"\\","b":"x"})", "$.b"},
      {R"({"a":"A😀"})", "$.a"},
      {R"({"b":5})", "$.b"},
      {R"({"a":"end\\"})", "$.a"},
      {"{\"a\":\"colon : brace } inside\",\"b\":[1,2]}", "$.b[0]"},
      // Numbers: huge magnitudes, int64 overflow into double, exponents.
      {R"({"n":99999999999999999999999})", "$.n"},
      {R"({"n":-9223372036854775808})", "$.n"},
      {R"({"n":9223372036854775807})", "$.n"},
      {R"({"n":1e308,"m":2})", "$.n"},
      {R"({"n":1e999})", "$.n"},
      {R"({"n":0.5e-3})", "$.n"},
      {R"({"n":NaN})", "$.n"},
      {R"({"n":Infinity})", "$.n"},
      // Malformed structure the index sees: unbalanced, mismatched,
      // unterminated, empty, bare separators.
      {R"({"a":1)", "$.a"},
      {R"({"a":1]})", "$.a"},
      {R"([1,2})", "$[0]"},
      {R"({"a":"unterminated)", "$.a"},
      {R"({)", "$.a"},
      {R"(})", "$.a"},
      {R"({"a":1}})", "$.a"},
      {R"({"a":1}{"b":2})", "$.a"},
      {R"({"a":1} x)", "$.a"},
      {R"({:1})", "$.a"},
      {R"({"a":})", "$.a"},
      {R"([:])", "$[0]"},
      {"", "$.a"},
      {"   ", "$.a"},
      // Empty containers, whitespace, arrays of arrays.
      {R"({})", "$.a"},
      {R"([])", "$[0]"},
      {"[  ]", "$[0]"},
      {"{ \"a\" :\n[ [1, 2] , [3] ] }", "$.a[1][0]"},
      {R"([[[1]]])", "$[0][0][0]"},
      {R"([1,2,3])", "$[3]"},
      {R"({"a":[{"b":1},{"b":2}]})", "$.a[1].b"},
      // Scalar roots: delegated to the DOM evaluator.
      {R"("hi")", "$.a"},
      {R"(42)", "$"},
      {R"(null)", "$.a"},
      {"  true  ", "$"},
      {R"("unterminated)", "$"},
      // Type mismatches along the path.
      {R"({"a":1})", "$.a.b"},
      {R"({"a":[1]})", "$.a.b"},
      {R"({"a":{"b":1}})", "$.a[0]"},
      {R"([1,2])", "$.a"},
  };
  // Deep nesting: past the DOM depth cap both must reject; deep-but-legal
  // must agree. The cap is 256 (dom_parser.cc / ondemand_tape.h).
  {
    std::string deep_ok = "{\"a\":";
    std::string path_ok = "$.a";
    for (int d = 0; d < 200; ++d) {
      deep_ok += "[";
      path_ok += "[0]";
    }
    deep_ok += "7";
    for (int d = 0; d < 200; ++d) deep_ok += "]";
    deep_ok += "}";
    cases.push_back({deep_ok, path_ok});
    std::string too_deep;
    for (int d = 0; d < 300; ++d) too_deep += "[";
    too_deep += "1";
    for (int d = 0; d < 300; ++d) too_deep += "]";
    cases.push_back({too_deep, "$[0]"});
  }
  // Truncations: every prefix of a representative document must error (or
  // succeed) identically.
  const std::string base = R"({"a":[1,{"b":"x\"y"}],"c":{"d":null}})";
  for (size_t len = 0; len <= base.size(); ++len) {
    cases.push_back({base.substr(0, len), "$.a[1].b"});
    cases.push_back({base.substr(0, len), "$.c.d"});
  }

  for (Isa level : SupportedLevels()) {
    IsaGuard guard(level);
    OndemandParser parser;
    for (const Case& c : cases) {
      ExpectStrict(&parser, c.doc, MustParsePath(c.path));
    }
  }
}

TEST(OndemandParserTest, RandomFuzzIsSoundAtEveryLevel) {
  // Random structural soup: on-demand may sail past token garbage the
  // query skips, but must never contradict a successful DOM result.
  static const char kAlphabet[] = "\"\\{}:,ab \t\n[]0.-e";
  Rng rng{190};
  std::vector<std::string> docs;
  for (int trial = 0; trial < 400; ++trial) {
    std::string s;
    const size_t len = 1 + rng.NextBounded(120);
    for (size_t i = 0; i < len; ++i) {
      s.push_back(kAlphabet[rng.NextBounded(sizeof(kAlphabet) - 1)]);
    }
    docs.push_back(s);
  }
  const std::vector<std::string> path_texts = {"$.a", "$.ab", "$[0]",
                                               "$[2]", "$.a[1].b", "$"};
  for (Isa level : SupportedLevels()) {
    IsaGuard guard(level);
    OndemandParser parser;
    for (const std::string& doc : docs) {
      for (const std::string& t : path_texts) {
        ExpectSound(&parser, doc, MustParsePath(t));
      }
    }
  }
}

TEST(OndemandParserTest, SkippedSubtreeGarbageIsTheDocumentedDivergence) {
  // The contract (ondemand_parser.h): token-level garbage whose bytes the
  // cursor never touches goes undetected — the only case where on-demand
  // succeeds and DOM errors. Pin it so a behavior change is a loud event.
  OndemandParser parser;
  const struct {
    std::string doc;
    std::string path;
    std::string want;
  } cases[] = {
      {R"({"junk":truu,"b":1})", "$.b", "1"},
      {R"({"junk":[1 2 3],"b":"x"})", "$.b", "x"},
      {R"([nope,7])", "$[1]", "7"},
      {R"({"a":1,})", "$.a", "1"},
  };
  for (const auto& c : cases) {
    const JsonPath path = MustParsePath(c.path);
    const Result<std::string> dom = json::GetJsonObject(c.doc, path);
    ASSERT_FALSE(dom.ok()) << c.doc;
    EXPECT_EQ(dom.status().code(), StatusCode::kParseError) << c.doc;
    const Result<std::string> ond = parser.Extract(c.doc, path);
    ASSERT_TRUE(ond.ok()) << c.doc << ": " << ond.status().message();
    EXPECT_EQ(*ond, c.want) << c.doc;
    // The moment the garbage is on the requested path, on-demand rejects
    // it too (materialization runs the DOM parser on the span).
    EXPECT_FALSE(parser.Extract(c.doc, MustParsePath("$.junk")).ok());
  }
}

TEST(OndemandParserTest, ExtractAllSharesOneTapeAcrossPaths) {
  OndemandParser parser;
  const std::string doc =
      R"({"a":1,"b":{"c":"two"},"d":[10,20,30],"pad":"xxxxxxxxxxxxxxxx"})";
  const std::vector<JsonPath> paths = {
      MustParsePath("$.a"), MustParsePath("$.b.c"), MustParsePath("$.d[2]"),
      MustParsePath("$.nope")};
  std::vector<Result<std::string>> out;
  ASSERT_TRUE(parser.ExtractAll(doc, paths, &out).ok());
  ASSERT_EQ(out.size(), paths.size());
  for (size_t i = 0; i < paths.size(); ++i) {
    const Result<std::string> dom = json::GetJsonObject(doc, paths[i]);
    ASSERT_EQ(out[i].ok(), dom.ok()) << paths[i].ToString();
    if (dom.ok()) {
      EXPECT_EQ(*out[i], *dom) << paths[i].ToString();
    } else {
      EXPECT_EQ(out[i].status().message(), dom.status().message());
    }
  }
  // One record, one tape — and the untouched padding counts as skipped.
  EXPECT_EQ(parser.records_indexed(), 1u);
  EXPECT_GT(parser.skipped_bytes(), 0u);
  // Structural malformation is a record-level failure: no slots are
  // produced and the caller falls back to the DOM for the whole record.
  std::vector<Result<std::string>> none;
  EXPECT_FALSE(parser.ExtractAll(R"({"a":1)", paths, &none).ok());
  EXPECT_TRUE(none.empty());
}

TEST(OndemandParserTest, TelemetryCountsAndAbsorbs) {
  OndemandParser a;
  const JsonPath path = MustParsePath("$.a");
  const std::string doc =
      R"({"a":1,"big":"0123456789012345678901234567890123456789"})";
  ASSERT_TRUE(a.Extract(doc, path).ok());
  ASSERT_TRUE(a.Extract(doc, path).ok());
  EXPECT_EQ(a.records_indexed(), 2u);
  const uint64_t skipped = a.skipped_bytes();
  EXPECT_GT(skipped, 0u);
  // Scalar roots take the DOM delegation and are not counted as indexed.
  EXPECT_FALSE(a.Extract("42", path).ok());
  EXPECT_EQ(a.records_indexed(), 2u);
  OndemandParser b;
  ASSERT_TRUE(b.Extract(doc, path).ok());
  b.AbsorbTelemetry(a);
  EXPECT_EQ(b.records_indexed(), 3u);
  EXPECT_EQ(b.skipped_bytes(), skipped + skipped / 2);
}

}  // namespace
}  // namespace maxson
